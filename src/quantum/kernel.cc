#include "quantum/kernel.h"

#include <algorithm>

#include "common/task_pool.h"

// Runtime-dispatched SIMD paths (cpuid-gated, portable binaries).
// -DEQC_NO_SIMD_DISPATCH opts out, e.g. to benchmark the scalar path.
// The gate and the cpuid probe are shared with density_matrix.cc and
// kernel_batched.cc through quantum/simd_dispatch.h.
#include "quantum/simd_dispatch.h"

namespace eqc {
namespace detail {

// Every kernel below follows the same two-layer shape: a standalone
// *worker* owning the hot loop (all operands copied into locals whose
// addresses never escape, so the compiler keeps them in registers), and
// a thin dispatcher that either calls the worker inline or hands the
// pool a by-value forwarding lambda. See shardBlocks() in kernel.h for
// why the hot loop must not live inside the lambda itself.

namespace {

#ifdef EQC_KERNEL_X86_DISPATCH

// The AVX2 variants below are built from cxMul/cxMulAdd (see
// quantum/simd_dispatch.h): mul/addsub only, no FMA, scalar
// accumulation order — bit-identical to the scalar workers.

/**
 * AVX2+FMA widening of the 1q statevector apply: two complex doubles
 * per 256-bit vector, complex multiply as fmaddsub(re·a, im·swap(a)).
 * Compiled with a per-function target attribute and selected at run
 * time (cpuid), so the default portable build still carries it. The
 * anchor-run enumeration is hand-rolled rather than shared through
 * forAnchorRuns: a lambda does not inherit the enclosing function's
 * target attribute, so intrinsics inside it would not compile.
 *
 * Same arithmetic as the scalar path up to FMA rounding (the fused
 * multiply-add keeps the intermediate product exact), well inside the
 * 1e-10 envelope the kernel equivalence tests enforce.
 */
__attribute__((target("avx2,fma"))) void
gate1RangeAvx2(Complex *amp, uint64_t b, uint64_t e, const Complex *uIn,
               uint64_t step)
{
    double *d = reinterpret_cast<double *>(amp);
    const Complex u00 = uIn[0], u01 = uIn[1];
    const Complex u10 = uIn[2], u11 = uIn[3];

    if (step == 1) {
        // Qubit 0: the pair (i0, i1) is adjacent in memory, so one
        // 256-bit load holds the whole 2-vector. Broadcast each
        // amplitude across lanes and apply both matrix rows at once:
        // lane 0 gets row 0, lane 1 gets row 1.
        const __m256d cR0 = _mm256_setr_pd(u00.real(), u00.real(),
                                           u10.real(), u10.real());
        const __m256d cI0 = _mm256_setr_pd(u00.imag(), u00.imag(),
                                           u10.imag(), u10.imag());
        const __m256d cR1 = _mm256_setr_pd(u01.real(), u01.real(),
                                           u11.real(), u11.real());
        const __m256d cI1 = _mm256_setr_pd(u01.imag(), u01.imag(),
                                           u11.imag(), u11.imag());
        for (uint64_t t = b; t < e; ++t) {
            double *p = d + 4 * t;
            const __m256d va = _mm256_loadu_pd(p);
            const __m256d a00 = _mm256_permute2f128_pd(va, va, 0x00);
            const __m256d a11 = _mm256_permute2f128_pd(va, va, 0x11);
            const __m256d a00s = _mm256_permute_pd(a00, 0x5);
            const __m256d a11s = _mm256_permute_pd(a11, 0x5);
            __m256d out = _mm256_fmaddsub_pd(
                cR0, a00, _mm256_mul_pd(cI0, a00s));
            out = _mm256_add_pd(
                out, _mm256_fmaddsub_pd(cR1, a11,
                                        _mm256_mul_pd(cI1, a11s)));
            _mm256_storeu_pd(p, out);
        }
        return;
    }

    const __m256d u00r = _mm256_set1_pd(u00.real());
    const __m256d u00i = _mm256_set1_pd(u00.imag());
    const __m256d u01r = _mm256_set1_pd(u01.real());
    const __m256d u01i = _mm256_set1_pd(u01.imag());
    const __m256d u10r = _mm256_set1_pd(u10.real());
    const __m256d u10i = _mm256_set1_pd(u10.imag());
    const __m256d u11r = _mm256_set1_pd(u11.real());
    const __m256d u11i = _mm256_set1_pd(u11.imag());

    const uint64_t lowMask = step - 1;
    const uint64_t runCap = step;
    uint64_t t = b;
    while (t < e) {
        const uint64_t lo = t & lowMask;
        const uint64_t anchor =
            (((t - lo) & ~lowMask) << 1) | ((t - lo) & lowMask);
        const uint64_t run = std::min(runCap - lo, e - t);
        const uint64_t start = anchor + lo;
        uint64_t r = 0;
        for (; r + 2 <= run; r += 2) {
            double *p0 = d + 2 * (start + r);
            double *p1 = d + 2 * (start + r + step);
            const __m256d a0 = _mm256_loadu_pd(p0);
            const __m256d a1 = _mm256_loadu_pd(p1);
            const __m256d a0s = _mm256_permute_pd(a0, 0x5);
            const __m256d a1s = _mm256_permute_pd(a1, 0x5);
            __m256d n0 = _mm256_fmaddsub_pd(
                u00r, a0, _mm256_mul_pd(u00i, a0s));
            n0 = _mm256_add_pd(
                n0, _mm256_fmaddsub_pd(u01r, a1,
                                       _mm256_mul_pd(u01i, a1s)));
            __m256d n1 = _mm256_fmaddsub_pd(
                u10r, a0, _mm256_mul_pd(u10i, a0s));
            n1 = _mm256_add_pd(
                n1, _mm256_fmaddsub_pd(u11r, a1,
                                       _mm256_mul_pd(u11i, a1s)));
            _mm256_storeu_pd(p0, n0);
            _mm256_storeu_pd(p1, n1);
        }
        for (; r < run; ++r) {
            const uint64_t i0 = start + r;
            const uint64_t i1 = i0 + step;
            const Complex a0 = amp[i0], a1 = amp[i1];
            amp[i0] = u00 * a0 + u01 * a1;
            amp[i1] = u10 * a0 + u11 * a1;
        }
        t += run;
    }
}

/**
 * AVX2 widening of the 2q statevector apply: two anchors (adjacent in a
 * run) per iteration, four 2-complex vectors in flight. Built from
 * cxMul/cxMulAdd in the exact scalar accumulation order, so the result
 * is bit-identical to gate2Range. Requires min(m0, m1) >= 2 (runs of at
 * least two anchors); the dispatcher keeps qubit-0 operands scalar.
 */
__attribute__((target("avx2"))) void
gate2RangeAvx2(Complex *amp, uint64_t b, uint64_t e, const Complex *uIn,
               uint64_t m0, uint64_t m1)
{
    double *d = reinterpret_cast<double *>(amp);
    Complex u[16];
    __m256d ur[16], ui[16];
    for (int j = 0; j < 16; ++j) {
        u[j] = uIn[j];
        ur[j] = _mm256_set1_pd(uIn[j].real());
        ui[j] = _mm256_set1_pd(uIn[j].imag());
    }
    const uint64_t lowA = std::min(m0, m1) - 1;
    const uint64_t lowB = std::max(m0, m1) - 1;
    const uint64_t runCap = lowA + 1;
    uint64_t t = b;
    while (t < e) {
        const uint64_t lo = t & (runCap - 1);
        uint64_t anchor = depositZeroBit(t - lo, lowA);
        anchor = depositZeroBit(anchor, lowB);
        const uint64_t run = std::min(runCap - lo, e - t);
        const uint64_t start = anchor + lo;
        uint64_t r = 0;
        for (; r + 2 <= run; r += 2) {
            const uint64_t i0 = start + r;
            double *p0 = d + 2 * i0;
            double *p1 = d + 2 * (i0 + m0);
            double *p2 = d + 2 * (i0 + m1);
            double *p3 = d + 2 * (i0 + m0 + m1);
            const __m256d g0 = _mm256_loadu_pd(p0);
            const __m256d g1 = _mm256_loadu_pd(p1);
            const __m256d g2 = _mm256_loadu_pd(p2);
            const __m256d g3 = _mm256_loadu_pd(p3);
            __m256d n0 = cxMul(g0, ur[0], ui[0]);
            n0 = cxMulAdd(n0, g1, ur[1], ui[1]);
            n0 = cxMulAdd(n0, g2, ur[2], ui[2]);
            n0 = cxMulAdd(n0, g3, ur[3], ui[3]);
            __m256d n1 = cxMul(g0, ur[4], ui[4]);
            n1 = cxMulAdd(n1, g1, ur[5], ui[5]);
            n1 = cxMulAdd(n1, g2, ur[6], ui[6]);
            n1 = cxMulAdd(n1, g3, ur[7], ui[7]);
            __m256d n2 = cxMul(g0, ur[8], ui[8]);
            n2 = cxMulAdd(n2, g1, ur[9], ui[9]);
            n2 = cxMulAdd(n2, g2, ur[10], ui[10]);
            n2 = cxMulAdd(n2, g3, ur[11], ui[11]);
            __m256d n3 = cxMul(g0, ur[12], ui[12]);
            n3 = cxMulAdd(n3, g1, ur[13], ui[13]);
            n3 = cxMulAdd(n3, g2, ur[14], ui[14]);
            n3 = cxMulAdd(n3, g3, ur[15], ui[15]);
            _mm256_storeu_pd(p0, n0);
            _mm256_storeu_pd(p1, n1);
            _mm256_storeu_pd(p2, n2);
            _mm256_storeu_pd(p3, n3);
        }
        for (; r < run; ++r) {
            const uint64_t i0 = start + r;
            const uint64_t i1 = i0 + m0;
            const uint64_t i2 = i0 + m1;
            const uint64_t i3 = i1 + m1;
            const Complex g0 = amp[i0], g1 = amp[i1];
            const Complex g2 = amp[i2], g3 = amp[i3];
            amp[i0] = u[0] * g0 + u[1] * g1 + u[2] * g2 + u[3] * g3;
            amp[i1] = u[4] * g0 + u[5] * g1 + u[6] * g2 + u[7] * g3;
            amp[i2] = u[8] * g0 + u[9] * g1 + u[10] * g2 + u[11] * g3;
            amp[i3] = u[12] * g0 + u[13] * g1 + u[14] * g2 + u[15] * g3;
        }
        t += run;
    }
}

/**
 * AVX2 widening of the fused 1q superoperator (U rho U^dagger per
 * block): two anchors per iteration, bit-identical to superop1Range.
 * Requires kBit >= 2.
 */
__attribute__((target("avx2"))) void
superop1RangeAvx2(Complex *rho, uint64_t b, uint64_t e, const Complex *uIn,
                  uint64_t kBit, uint64_t bBit)
{
    double *d = reinterpret_cast<double *>(rho);
    const Complex u00 = uIn[0], u01 = uIn[1];
    const Complex u10 = uIn[2], u11 = uIn[3];
    const Complex c00 = std::conj(u00), c01 = std::conj(u01);
    const Complex c10 = std::conj(u10), c11 = std::conj(u11);
    const __m256d u00r = _mm256_set1_pd(u00.real());
    const __m256d u00i = _mm256_set1_pd(u00.imag());
    const __m256d u01r = _mm256_set1_pd(u01.real());
    const __m256d u01i = _mm256_set1_pd(u01.imag());
    const __m256d u10r = _mm256_set1_pd(u10.real());
    const __m256d u10i = _mm256_set1_pd(u10.imag());
    const __m256d u11r = _mm256_set1_pd(u11.real());
    const __m256d u11i = _mm256_set1_pd(u11.imag());
    const __m256d c00r = _mm256_set1_pd(c00.real());
    const __m256d c00i = _mm256_set1_pd(c00.imag());
    const __m256d c01r = _mm256_set1_pd(c01.real());
    const __m256d c01i = _mm256_set1_pd(c01.imag());
    const __m256d c10r = _mm256_set1_pd(c10.real());
    const __m256d c10i = _mm256_set1_pd(c10.imag());
    const __m256d c11r = _mm256_set1_pd(c11.real());
    const __m256d c11i = _mm256_set1_pd(c11.imag());
    const uint64_t lowA = kBit - 1;
    const uint64_t lowB = bBit - 1;
    const uint64_t runCap = kBit;
    uint64_t t = b;
    while (t < e) {
        const uint64_t lo = t & (runCap - 1);
        uint64_t anchor = depositZeroBit(t - lo, lowA);
        anchor = depositZeroBit(anchor, lowB);
        const uint64_t run = std::min(runCap - lo, e - t);
        const uint64_t start = anchor + lo;
        uint64_t r = 0;
        for (; r + 2 <= run; r += 2) {
            const uint64_t i = start + r;
            double *p00 = d + 2 * i;
            double *p01 = d + 2 * (i + bBit);
            double *p10 = d + 2 * (i + kBit);
            double *p11 = d + 2 * (i + kBit + bBit);
            const __m256d b00 = _mm256_loadu_pd(p00);
            const __m256d b01 = _mm256_loadu_pd(p01);
            const __m256d b10 = _mm256_loadu_pd(p10);
            const __m256d b11 = _mm256_loadu_pd(p11);
            const __m256d t00 =
                cxMulAdd(cxMul(b00, u00r, u00i), b10, u01r, u01i);
            const __m256d t01 =
                cxMulAdd(cxMul(b01, u00r, u00i), b11, u01r, u01i);
            const __m256d t10 =
                cxMulAdd(cxMul(b00, u10r, u10i), b10, u11r, u11i);
            const __m256d t11 =
                cxMulAdd(cxMul(b01, u10r, u10i), b11, u11r, u11i);
            _mm256_storeu_pd(
                p00, cxMulAdd(cxMul(t00, c00r, c00i), t01, c01r, c01i));
            _mm256_storeu_pd(
                p01, cxMulAdd(cxMul(t00, c10r, c10i), t01, c11r, c11i));
            _mm256_storeu_pd(
                p10, cxMulAdd(cxMul(t10, c00r, c00i), t11, c01r, c01i));
            _mm256_storeu_pd(
                p11, cxMulAdd(cxMul(t10, c10r, c10i), t11, c11r, c11i));
        }
        for (; r < run; ++r) {
            const uint64_t i = start + r;
            const uint64_t iK = i + kBit;
            const uint64_t iB = i + bBit;
            const uint64_t iKB = iK + bBit;
            const Complex b00 = rho[i], b01 = rho[iB];
            const Complex b10 = rho[iK], b11 = rho[iKB];
            const Complex t00 = u00 * b00 + u01 * b10;
            const Complex t01 = u00 * b01 + u01 * b11;
            const Complex t10 = u10 * b00 + u11 * b10;
            const Complex t11 = u10 * b01 + u11 * b11;
            rho[i] = t00 * c00 + t01 * c01;
            rho[iB] = t00 * c10 + t01 * c11;
            rho[iK] = t10 * c00 + t11 * c01;
            rho[iKB] = t10 * c10 + t11 * c11;
        }
        t += run;
    }
}

/**
 * AVX2 widening of the dense 4x4 channel superoperator apply —
 * the hottest noisy-path kernel (every SX/X rides through it as a
 * composed gate+noise pass). Bit-identical to superopMat1Range.
 *
 * Two shapes: for kBit >= 2 the usual two-anchors-per-iteration walk;
 * for kBit == 1 (qubit 0, where every anchor run degenerates to length
 * one) the block's ket pair (v0, v1) is adjacent in memory, so one
 * 256-bit vector holds it and the 4x4 mat-vec runs as four
 * broadcast-input x packed-row-pair products per output vector.
 */
__attribute__((target("avx2"))) void
superopMat1RangeAvx2(Complex *rho, uint64_t b, uint64_t e, const Complex *s,
                     uint64_t kBit, uint64_t bBit)
{
    double *d = reinterpret_cast<double *>(rho);
    Complex m[16];
    for (int j = 0; j < 16; ++j)
        m[j] = s[j];

    if (kBit == 1) {
        // Row pairs packed per 128-bit half: lane half 0 applies row a,
        // half 1 row a+1 (same layout trick as gate1RangeAvx2 step==1).
        __m256d crA[4], ciA[4], crB[4], ciB[4];
        for (int j = 0; j < 4; ++j) {
            crA[j] = _mm256_setr_pd(m[j].real(), m[j].real(),
                                    m[4 + j].real(), m[4 + j].real());
            ciA[j] = _mm256_setr_pd(m[j].imag(), m[j].imag(),
                                    m[4 + j].imag(), m[4 + j].imag());
            crB[j] = _mm256_setr_pd(m[8 + j].real(), m[8 + j].real(),
                                    m[12 + j].real(), m[12 + j].real());
            ciB[j] = _mm256_setr_pd(m[8 + j].imag(), m[8 + j].imag(),
                                    m[12 + j].imag(), m[12 + j].imag());
        }
        const uint64_t lowB = bBit - 1;
        for (uint64_t t = b; t < e; ++t) {
            const uint64_t i = depositZeroBit(depositZeroBit(t, 0), lowB);
            double *pk = d + 2 * i;
            double *pb = d + 2 * (i + bBit);
            const __m256d v01 = _mm256_loadu_pd(pk);
            const __m256d v23 = _mm256_loadu_pd(pb);
            const __m256d b0 = _mm256_permute2f128_pd(v01, v01, 0x00);
            const __m256d b1 = _mm256_permute2f128_pd(v01, v01, 0x11);
            const __m256d b2 = _mm256_permute2f128_pd(v23, v23, 0x00);
            const __m256d b3 = _mm256_permute2f128_pd(v23, v23, 0x11);
            __m256d o01 = cxMul(b0, crA[0], ciA[0]);
            o01 = cxMulAdd(o01, b1, crA[1], ciA[1]);
            o01 = cxMulAdd(o01, b2, crA[2], ciA[2]);
            o01 = cxMulAdd(o01, b3, crA[3], ciA[3]);
            __m256d o23 = cxMul(b0, crB[0], ciB[0]);
            o23 = cxMulAdd(o23, b1, crB[1], ciB[1]);
            o23 = cxMulAdd(o23, b2, crB[2], ciB[2]);
            o23 = cxMulAdd(o23, b3, crB[3], ciB[3]);
            _mm256_storeu_pd(pk, o01);
            _mm256_storeu_pd(pb, o23);
        }
        return;
    }

    __m256d mr[16], mi[16];
    for (int j = 0; j < 16; ++j) {
        mr[j] = _mm256_set1_pd(m[j].real());
        mi[j] = _mm256_set1_pd(m[j].imag());
    }
    const uint64_t lowA = kBit - 1;
    const uint64_t lowB = bBit - 1;
    const uint64_t runCap = kBit;
    uint64_t t = b;
    while (t < e) {
        const uint64_t lo = t & (runCap - 1);
        uint64_t anchor = depositZeroBit(t - lo, lowA);
        anchor = depositZeroBit(anchor, lowB);
        const uint64_t run = std::min(runCap - lo, e - t);
        const uint64_t start = anchor + lo;
        uint64_t r = 0;
        for (; r + 2 <= run; r += 2) {
            const uint64_t i = start + r;
            double *p0 = d + 2 * i;
            double *p1 = d + 2 * (i + kBit);
            double *p2 = d + 2 * (i + bBit);
            double *p3 = d + 2 * (i + kBit + bBit);
            const __m256d v0 = _mm256_loadu_pd(p0);
            const __m256d v1 = _mm256_loadu_pd(p1);
            const __m256d v2 = _mm256_loadu_pd(p2);
            const __m256d v3 = _mm256_loadu_pd(p3);
            __m256d n0 = cxMul(v0, mr[0], mi[0]);
            n0 = cxMulAdd(n0, v1, mr[1], mi[1]);
            n0 = cxMulAdd(n0, v2, mr[2], mi[2]);
            n0 = cxMulAdd(n0, v3, mr[3], mi[3]);
            __m256d n1 = cxMul(v0, mr[4], mi[4]);
            n1 = cxMulAdd(n1, v1, mr[5], mi[5]);
            n1 = cxMulAdd(n1, v2, mr[6], mi[6]);
            n1 = cxMulAdd(n1, v3, mr[7], mi[7]);
            __m256d n2 = cxMul(v0, mr[8], mi[8]);
            n2 = cxMulAdd(n2, v1, mr[9], mi[9]);
            n2 = cxMulAdd(n2, v2, mr[10], mi[10]);
            n2 = cxMulAdd(n2, v3, mr[11], mi[11]);
            __m256d n3 = cxMul(v0, mr[12], mi[12]);
            n3 = cxMulAdd(n3, v1, mr[13], mi[13]);
            n3 = cxMulAdd(n3, v2, mr[14], mi[14]);
            n3 = cxMulAdd(n3, v3, mr[15], mi[15]);
            _mm256_storeu_pd(p0, n0);
            _mm256_storeu_pd(p1, n1);
            _mm256_storeu_pd(p2, n2);
            _mm256_storeu_pd(p3, n3);
        }
        for (; r < run; ++r) {
            const uint64_t i = start + r;
            const uint64_t iK = i + kBit;
            const uint64_t iB = i + bBit;
            const uint64_t iKB = iK + bBit;
            const Complex v0 = rho[i], v1 = rho[iK];
            const Complex v2 = rho[iB], v3 = rho[iKB];
            rho[i] = m[0] * v0 + m[1] * v1 + m[2] * v2 + m[3] * v3;
            rho[iK] = m[4] * v0 + m[5] * v1 + m[6] * v2 + m[7] * v3;
            rho[iB] = m[8] * v0 + m[9] * v1 + m[10] * v2 + m[11] * v3;
            rho[iKB] =
                m[12] * v0 + m[13] * v1 + m[14] * v2 + m[15] * v3;
        }
        t += run;
    }
}

/**
 * AVX2 widening of the 1q diagonal superoperator (four elementwise
 * phase-factor streams). Bit-identical to superopDiag1Range; has a
 * packed-pair path for kBit == 1 like superopMat1RangeAvx2.
 */
__attribute__((target("avx2"))) void
superopDiag1RangeAvx2(Complex *rho, uint64_t b, uint64_t e, Complex d0,
                      Complex d1, uint64_t kBit, uint64_t bBit)
{
    double *d = reinterpret_cast<double *>(rho);
    const Complex f00 = d0 * std::conj(d0);
    const Complex f01 = d0 * std::conj(d1);
    const Complex f10 = d1 * std::conj(d0);
    const Complex f11 = d1 * std::conj(d1);

    if (kBit == 1) {
        // Ket pair adjacent: (i, i+1) takes (f00, f10); the bra-shifted
        // pair takes (f01, f11).
        const __m256d fkr = _mm256_setr_pd(f00.real(), f00.real(),
                                           f10.real(), f10.real());
        const __m256d fki = _mm256_setr_pd(f00.imag(), f00.imag(),
                                           f10.imag(), f10.imag());
        const __m256d fbr = _mm256_setr_pd(f01.real(), f01.real(),
                                           f11.real(), f11.real());
        const __m256d fbi = _mm256_setr_pd(f01.imag(), f01.imag(),
                                           f11.imag(), f11.imag());
        const uint64_t lowB = bBit - 1;
        for (uint64_t t = b; t < e; ++t) {
            const uint64_t i = depositZeroBit(depositZeroBit(t, 0), lowB);
            double *pk = d + 2 * i;
            double *pb = d + 2 * (i + bBit);
            _mm256_storeu_pd(pk, cxMul(_mm256_loadu_pd(pk), fkr, fki));
            _mm256_storeu_pd(pb, cxMul(_mm256_loadu_pd(pb), fbr, fbi));
        }
        return;
    }

    const __m256d f00r = _mm256_set1_pd(f00.real());
    const __m256d f00i = _mm256_set1_pd(f00.imag());
    const __m256d f01r = _mm256_set1_pd(f01.real());
    const __m256d f01i = _mm256_set1_pd(f01.imag());
    const __m256d f10r = _mm256_set1_pd(f10.real());
    const __m256d f10i = _mm256_set1_pd(f10.imag());
    const __m256d f11r = _mm256_set1_pd(f11.real());
    const __m256d f11i = _mm256_set1_pd(f11.imag());
    const uint64_t lowA = kBit - 1;
    const uint64_t lowB = bBit - 1;
    const uint64_t runCap = kBit;
    uint64_t t = b;
    while (t < e) {
        const uint64_t lo = t & (runCap - 1);
        uint64_t anchor = depositZeroBit(t - lo, lowA);
        anchor = depositZeroBit(anchor, lowB);
        const uint64_t run = std::min(runCap - lo, e - t);
        const uint64_t start = anchor + lo;
        uint64_t r = 0;
        for (; r + 2 <= run; r += 2) {
            const uint64_t i = start + r;
            double *p00 = d + 2 * i;
            double *p01 = d + 2 * (i + bBit);
            double *p10 = d + 2 * (i + kBit);
            double *p11 = d + 2 * (i + kBit + bBit);
            _mm256_storeu_pd(p00,
                             cxMul(_mm256_loadu_pd(p00), f00r, f00i));
            _mm256_storeu_pd(p01,
                             cxMul(_mm256_loadu_pd(p01), f01r, f01i));
            _mm256_storeu_pd(p10,
                             cxMul(_mm256_loadu_pd(p10), f10r, f10i));
            _mm256_storeu_pd(p11,
                             cxMul(_mm256_loadu_pd(p11), f11r, f11i));
        }
        for (; r < run; ++r) {
            const uint64_t i = start + r;
            rho[i] *= f00;
            rho[i + bBit] *= f01;
            rho[i + kBit] *= f10;
            rho[i + kBit + bBit] *= f11;
        }
        t += run;
    }
}

/**
 * AVX2 widening of the fused 2q superoperator: sixteen 2-complex block
 * vectors in flight per iteration pair, U blk then tmp U^dagger in the
 * exact scalar order. Bit-identical to superop2Range; requires
 * min(mk0, mk1) >= 2.
 */
__attribute__((target("avx2"))) void
superop2RangeAvx2(Complex *rho, uint64_t b, uint64_t e, const Complex *uIn,
                  uint64_t mk0, uint64_t mk1, uint64_t mb0, uint64_t mb1)
{
    double *d = reinterpret_cast<double *>(rho);
    Complex u[16], cu[16];
    __m256d ur[16], ui[16], cr[16], ci[16];
    for (int j = 0; j < 16; ++j) {
        u[j] = uIn[j];
        cu[j] = std::conj(uIn[j]);
        ur[j] = _mm256_set1_pd(u[j].real());
        ui[j] = _mm256_set1_pd(u[j].imag());
        cr[j] = _mm256_set1_pd(cu[j].real());
        ci[j] = _mm256_set1_pd(cu[j].imag());
    }
    uint64_t ketOff[4], braOff[4];
    for (int j = 0; j < 4; ++j) {
        ketOff[j] = (j & 1 ? mk0 : 0) | (j & 2 ? mk1 : 0);
        braOff[j] = (j & 1 ? mb0 : 0) | (j & 2 ? mb1 : 0);
    }
    uint64_t lows[4] = {std::min(mk0, mk1) - 1, std::max(mk0, mk1) - 1,
                        std::min(mb0, mb1) - 1, std::max(mb0, mb1) - 1};
    const uint64_t runCap = lows[0] + 1;
    uint64_t t = b;
    while (t < e) {
        const uint64_t lo = t & (runCap - 1);
        uint64_t anchor = t - lo;
        for (int m = 0; m < 4; ++m)
            anchor = depositZeroBit(anchor, lows[m]);
        const uint64_t run = std::min(runCap - lo, e - t);
        const uint64_t start = anchor + lo;
        uint64_t x = 0;
        for (; x + 2 <= run; x += 2) {
            const uint64_t i = start + x;
            __m256d blk[16], tmp[16];
            for (int r = 0; r < 4; ++r)
                for (int s = 0; s < 4; ++s)
                    blk[r * 4 + s] = _mm256_loadu_pd(
                        d + 2 * (i + ketOff[r] + braOff[s]));
            for (int r = 0; r < 4; ++r) {
                for (int s = 0; s < 4; ++s) {
                    __m256d acc =
                        cxMul(blk[s], ur[4 * r], ui[4 * r]);
                    acc = cxMulAdd(acc, blk[4 + s], ur[4 * r + 1],
                                   ui[4 * r + 1]);
                    acc = cxMulAdd(acc, blk[8 + s], ur[4 * r + 2],
                                   ui[4 * r + 2]);
                    acc = cxMulAdd(acc, blk[12 + s], ur[4 * r + 3],
                                   ui[4 * r + 3]);
                    tmp[r * 4 + s] = acc;
                }
            }
            for (int r = 0; r < 4; ++r) {
                for (int s = 0; s < 4; ++s) {
                    __m256d acc =
                        cxMul(tmp[r * 4], cr[4 * s], ci[4 * s]);
                    acc = cxMulAdd(acc, tmp[r * 4 + 1], cr[4 * s + 1],
                                   ci[4 * s + 1]);
                    acc = cxMulAdd(acc, tmp[r * 4 + 2], cr[4 * s + 2],
                                   ci[4 * s + 2]);
                    acc = cxMulAdd(acc, tmp[r * 4 + 3], cr[4 * s + 3],
                                   ci[4 * s + 3]);
                    _mm256_storeu_pd(
                        d + 2 * (i + ketOff[r] + braOff[s]), acc);
                }
            }
        }
        for (; x < run; ++x) {
            const uint64_t i = start + x;
            Complex blk[4][4], tmp[4][4];
            for (int r = 0; r < 4; ++r)
                for (int s = 0; s < 4; ++s)
                    blk[r][s] = rho[i + ketOff[r] + braOff[s]];
            for (int r = 0; r < 4; ++r) {
                const Complex *urow = u + 4 * r;
                for (int s = 0; s < 4; ++s) {
                    tmp[r][s] = urow[0] * blk[0][s] +
                                urow[1] * blk[1][s] +
                                urow[2] * blk[2][s] + urow[3] * blk[3][s];
                }
            }
            for (int r = 0; r < 4; ++r) {
                for (int s = 0; s < 4; ++s) {
                    const Complex *cs = cu + 4 * s;
                    rho[i + ketOff[r] + braOff[s]] =
                        tmp[r][0] * cs[0] + tmp[r][1] * cs[1] +
                        tmp[r][2] * cs[2] + tmp[r][3] * cs[3];
                }
            }
        }
        t += run;
    }
}

/**
 * AVX2 widening of the 2q diagonal superoperator (sixteen elementwise
 * phase-factor streams). Bit-identical to superopDiag2Range; requires
 * min(mk0, mk1) >= 2.
 */
__attribute__((target("avx2"))) void
superopDiag2RangeAvx2(Complex *rho, uint64_t b, uint64_t e,
                      const Complex *dIn, uint64_t mk0, uint64_t mk1,
                      uint64_t mb0, uint64_t mb1)
{
    double *d = reinterpret_cast<double *>(rho);
    uint64_t off[16];
    Complex f[16];
    __m256d fr[16], fi[16];
    for (int r = 0; r < 4; ++r) {
        for (int s = 0; s < 4; ++s) {
            off[r * 4 + s] = ((r & 1 ? mk0 : 0) | (r & 2 ? mk1 : 0)) +
                             ((s & 1 ? mb0 : 0) | (s & 2 ? mb1 : 0));
            f[r * 4 + s] = dIn[r] * std::conj(dIn[s]);
            fr[r * 4 + s] = _mm256_set1_pd(f[r * 4 + s].real());
            fi[r * 4 + s] = _mm256_set1_pd(f[r * 4 + s].imag());
        }
    }
    uint64_t lows[4] = {std::min(mk0, mk1) - 1, std::max(mk0, mk1) - 1,
                        std::min(mb0, mb1) - 1, std::max(mb0, mb1) - 1};
    const uint64_t runCap = lows[0] + 1;
    uint64_t t = b;
    while (t < e) {
        const uint64_t lo = t & (runCap - 1);
        uint64_t anchor = t - lo;
        for (int m = 0; m < 4; ++m)
            anchor = depositZeroBit(anchor, lows[m]);
        const uint64_t run = std::min(runCap - lo, e - t);
        const uint64_t start = anchor + lo;
        uint64_t x = 0;
        for (; x + 2 <= run; x += 2) {
            const uint64_t i = start + x;
            for (int j = 0; j < 16; ++j) {
                double *p = d + 2 * (i + off[j]);
                _mm256_storeu_pd(
                    p, cxMul(_mm256_loadu_pd(p), fr[j], fi[j]));
            }
        }
        for (; x < run; ++x) {
            const uint64_t i = start + x;
            for (int j = 0; j < 16; ++j)
                rho[i + off[j]] *= f[j];
        }
        t += run;
    }
}

#endif // EQC_KERNEL_X86_DISPATCH

void
gate1Range(Complex *amp, uint64_t b, uint64_t e, const Complex *uIn,
           uint64_t step)
{
#ifdef EQC_KERNEL_X86_DISPATCH
    if (cpuHasAvx2Fma()) {
        gate1RangeAvx2(amp, b, e, uIn, step);
        return;
    }
#endif
    const Complex u00 = uIn[0], u01 = uIn[1];
    const Complex u10 = uIn[2], u11 = uIn[3];
    const uint64_t lows[1] = {step - 1};
    forAnchorRuns<1>(b, e, lows, [&](uint64_t start, uint64_t run) {
        for (uint64_t r = 0; r < run; ++r) {
            const uint64_t i0 = start + r;
            const uint64_t i1 = i0 + step;
            const Complex a0 = amp[i0], a1 = amp[i1];
            amp[i0] = u00 * a0 + u01 * a1;
            amp[i1] = u10 * a0 + u11 * a1;
        }
    });
}

void
diag1Range(Complex *amp, uint64_t b, uint64_t e, Complex d0, Complex d1,
           uint64_t step)
{
    const uint64_t lows[1] = {step - 1};
    forAnchorRuns<1>(b, e, lows, [&](uint64_t start, uint64_t run) {
        for (uint64_t r = 0; r < run; ++r) {
            amp[start + r] *= d0;
            amp[start + r + step] *= d1;
        }
    });
}

void
gate2Range(Complex *amp, uint64_t b, uint64_t e, const Complex *uIn,
           uint64_t m0, uint64_t m1)
{
#ifdef EQC_KERNEL_X86_DISPATCH
    // Qubit-0 operands degenerate to length-1 anchor runs, which the
    // two-anchors-per-iteration AVX2 walk cannot pair up — keep scalar.
    if (std::min(m0, m1) > 1 && cpuHasAvx2Fma()) {
        gate2RangeAvx2(amp, b, e, uIn, m0, m1);
        return;
    }
#endif
    Complex u[16];
    for (int j = 0; j < 16; ++j)
        u[j] = uIn[j];
    const uint64_t lows[2] = {std::min(m0, m1) - 1, std::max(m0, m1) - 1};
    forAnchorRuns<2>(b, e, lows, [&](uint64_t start, uint64_t run) {
        for (uint64_t r = 0; r < run; ++r) {
            const uint64_t i0 = start + r;
            const uint64_t i1 = i0 + m0;
            const uint64_t i2 = i0 + m1;
            const uint64_t i3 = i1 + m1;
            const Complex g0 = amp[i0], g1 = amp[i1];
            const Complex g2 = amp[i2], g3 = amp[i3];
            amp[i0] = u[0] * g0 + u[1] * g1 + u[2] * g2 + u[3] * g3;
            amp[i1] = u[4] * g0 + u[5] * g1 + u[6] * g2 + u[7] * g3;
            amp[i2] = u[8] * g0 + u[9] * g1 + u[10] * g2 + u[11] * g3;
            amp[i3] = u[12] * g0 + u[13] * g1 + u[14] * g2 + u[15] * g3;
        }
    });
}

void
diag2Range(Complex *amp, uint64_t b, uint64_t e, const Complex *dIn,
           uint64_t m0, uint64_t m1)
{
    const Complex d0 = dIn[0], d1 = dIn[1], d2 = dIn[2], d3 = dIn[3];
    const uint64_t lows[2] = {std::min(m0, m1) - 1, std::max(m0, m1) - 1};
    forAnchorRuns<2>(b, e, lows, [&](uint64_t start, uint64_t run) {
        for (uint64_t r = 0; r < run; ++r) {
            const uint64_t i0 = start + r;
            amp[i0] *= d0;
            amp[i0 + m0] *= d1;
            amp[i0 + m1] *= d2;
            amp[i0 + m0 + m1] *= d3;
        }
    });
}

void
superop1Range(Complex *rho, uint64_t b, uint64_t e, const Complex *uIn,
              uint64_t kBit, uint64_t bBit)
{
#ifdef EQC_KERNEL_X86_DISPATCH
    if (kBit > 1 && cpuHasAvx2Fma()) {
        superop1RangeAvx2(rho, b, e, uIn, kBit, bBit);
        return;
    }
#endif
    const Complex u00 = uIn[0], u01 = uIn[1];
    const Complex u10 = uIn[2], u11 = uIn[3];
    const Complex c00 = std::conj(u00), c01 = std::conj(u01);
    const Complex c10 = std::conj(u10), c11 = std::conj(u11);
    const uint64_t lows[2] = {kBit - 1, bBit - 1};
    forAnchorRuns<2>(b, e, lows, [&](uint64_t start, uint64_t run) {
        for (uint64_t r = 0; r < run; ++r) {
            const uint64_t i = start + r;
            const uint64_t iK = i + kBit;
            const uint64_t iB = i + bBit;
            const uint64_t iKB = iK + bBit;
            // Block blk[r][s] over (ket sub-index r, bra sub-index s).
            const Complex b00 = rho[i], b01 = rho[iB];
            const Complex b10 = rho[iK], b11 = rho[iKB];
            // rho' = U blk U^dagger in one pass.
            const Complex t00 = u00 * b00 + u01 * b10;
            const Complex t01 = u00 * b01 + u01 * b11;
            const Complex t10 = u10 * b00 + u11 * b10;
            const Complex t11 = u10 * b01 + u11 * b11;
            rho[i] = t00 * c00 + t01 * c01;
            rho[iB] = t00 * c10 + t01 * c11;
            rho[iK] = t10 * c00 + t11 * c01;
            rho[iKB] = t10 * c10 + t11 * c11;
        }
    });
}

void
superopMat1Range(Complex *rho, uint64_t b, uint64_t e, const Complex *s,
                 uint64_t kBit, uint64_t bBit)
{
#ifdef EQC_KERNEL_X86_DISPATCH
    if (cpuHasAvx2Fma()) {
        superopMat1RangeAvx2(rho, b, e, s, kBit, bBit);
        return;
    }
#endif
    // Dense 4x4 channel superoperator over sub-index j = k + 2b.
    Complex m[16];
    for (int i = 0; i < 16; ++i)
        m[i] = s[i];
    const uint64_t lows[2] = {kBit - 1, bBit - 1};
    forAnchorRuns<2>(b, e, lows, [&](uint64_t start, uint64_t run) {
        for (uint64_t r = 0; r < run; ++r) {
            const uint64_t i = start + r;
            const uint64_t iK = i + kBit;
            const uint64_t iB = i + bBit;
            const uint64_t iKB = iK + bBit;
            const Complex v0 = rho[i], v1 = rho[iK];
            const Complex v2 = rho[iB], v3 = rho[iKB];
            rho[i] = m[0] * v0 + m[1] * v1 + m[2] * v2 + m[3] * v3;
            rho[iK] = m[4] * v0 + m[5] * v1 + m[6] * v2 + m[7] * v3;
            rho[iB] = m[8] * v0 + m[9] * v1 + m[10] * v2 + m[11] * v3;
            rho[iKB] =
                m[12] * v0 + m[13] * v1 + m[14] * v2 + m[15] * v3;
        }
    });
}

void
superopDiag1Range(Complex *rho, uint64_t b, uint64_t e, Complex d0,
                  Complex d1, uint64_t kBit, uint64_t bBit)
{
#ifdef EQC_KERNEL_X86_DISPATCH
    if (cpuHasAvx2Fma()) {
        superopDiag1RangeAvx2(rho, b, e, d0, d1, kBit, bBit);
        return;
    }
#endif
    const Complex f00 = d0 * std::conj(d0);
    const Complex f01 = d0 * std::conj(d1);
    const Complex f10 = d1 * std::conj(d0);
    const Complex f11 = d1 * std::conj(d1);
    const uint64_t lows[2] = {kBit - 1, bBit - 1};
    forAnchorRuns<2>(b, e, lows, [&](uint64_t start, uint64_t run) {
        for (uint64_t r = 0; r < run; ++r) {
            const uint64_t i = start + r;
            rho[i] *= f00;
            rho[i + bBit] *= f01;
            rho[i + kBit] *= f10;
            rho[i + kBit + bBit] *= f11;
        }
    });
}

void
superop2Range(Complex *rho, uint64_t b, uint64_t e, const Complex *uIn,
              uint64_t mk0, uint64_t mk1, uint64_t mb0, uint64_t mb1)
{
#ifdef EQC_KERNEL_X86_DISPATCH
    if (std::min(mk0, mk1) > 1 && cpuHasAvx2Fma()) {
        superop2RangeAvx2(rho, b, e, uIn, mk0, mk1, mb0, mb1);
        return;
    }
#endif
    Complex u[16], cu[16];
    for (int j = 0; j < 16; ++j) {
        u[j] = uIn[j];
        cu[j] = std::conj(uIn[j]);
    }
    uint64_t ketOff[4], braOff[4];
    for (int j = 0; j < 4; ++j) {
        ketOff[j] = (j & 1 ? mk0 : 0) | (j & 2 ? mk1 : 0);
        braOff[j] = (j & 1 ? mb0 : 0) | (j & 2 ? mb1 : 0);
    }
    uint64_t lows[4] = {std::min(mk0, mk1) - 1, std::max(mk0, mk1) - 1,
                        std::min(mb0, mb1) - 1, std::max(mb0, mb1) - 1};
    forAnchorRuns<4>(b, e, lows, [&](uint64_t start, uint64_t run) {
        Complex blk[4][4], tmp[4][4];
        for (uint64_t x = 0; x < run; ++x) {
            const uint64_t i = start + x;
            for (int r = 0; r < 4; ++r)
                for (int s = 0; s < 4; ++s)
                    blk[r][s] = rho[i + ketOff[r] + braOff[s]];
            // tmp = U blk, then rho' = tmp U^dagger.
            for (int r = 0; r < 4; ++r) {
                const Complex *ur = u + 4 * r;
                for (int s = 0; s < 4; ++s) {
                    tmp[r][s] = ur[0] * blk[0][s] + ur[1] * blk[1][s] +
                                ur[2] * blk[2][s] + ur[3] * blk[3][s];
                }
            }
            for (int r = 0; r < 4; ++r) {
                for (int s = 0; s < 4; ++s) {
                    const Complex *cs = cu + 4 * s;
                    rho[i + ketOff[r] + braOff[s]] =
                        tmp[r][0] * cs[0] + tmp[r][1] * cs[1] +
                        tmp[r][2] * cs[2] + tmp[r][3] * cs[3];
                }
            }
        }
    });
}

void
superopDiag2Range(Complex *rho, uint64_t b, uint64_t e, const Complex *dIn,
                  uint64_t mk0, uint64_t mk1, uint64_t mb0, uint64_t mb1)
{
#ifdef EQC_KERNEL_X86_DISPATCH
    if (std::min(mk0, mk1) > 1 && cpuHasAvx2Fma()) {
        superopDiag2RangeAvx2(rho, b, e, dIn, mk0, mk1, mb0, mb1);
        return;
    }
#endif
    uint64_t off[4][4];
    Complex f[4][4];
    for (int r = 0; r < 4; ++r) {
        for (int s = 0; s < 4; ++s) {
            off[r][s] = ((r & 1 ? mk0 : 0) | (r & 2 ? mk1 : 0)) +
                        ((s & 1 ? mb0 : 0) | (s & 2 ? mb1 : 0));
            f[r][s] = dIn[r] * std::conj(dIn[s]);
        }
    }
    uint64_t lows[4] = {std::min(mk0, mk1) - 1, std::max(mk0, mk1) - 1,
                        std::min(mb0, mb1) - 1, std::max(mb0, mb1) - 1};
    forAnchorRuns<4>(b, e, lows, [&](uint64_t start, uint64_t run) {
        for (uint64_t x = 0; x < run; ++x) {
            const uint64_t i = start + x;
            for (int r = 0; r < 4; ++r)
                for (int s = 0; s < 4; ++s)
                    rho[i + off[r][s]] *= f[r][s];
        }
    });
}

void
permPhase1Range(Complex *amp, uint64_t b, uint64_t e, Complex p0,
                Complex p1, bool unit, uint64_t step)
{
    // 1q non-diagonal permutation is always the swap {1, 0}.
    const uint64_t lows[1] = {step - 1};
    forAnchorRuns<1>(b, e, lows, [&](uint64_t start, uint64_t run) {
        if (unit) {
            for (uint64_t r = 0; r < run; ++r) {
                const uint64_t i0 = start + r;
                std::swap(amp[i0], amp[i0 + step]);
            }
        } else {
            for (uint64_t r = 0; r < run; ++r) {
                const uint64_t i0 = start + r;
                const Complex a0 = amp[i0], a1 = amp[i0 + step];
                amp[i0] = p0 * a1;
                amp[i0 + step] = p1 * a0;
            }
        }
    });
}

void
permPhase2Range(Complex *amp, uint64_t b, uint64_t e, PermPhase pp,
                uint64_t m0, uint64_t m1)
{
    uint64_t off[4];
    for (int j = 0; j < 4; ++j)
        off[j] = (j & 1 ? m0 : 0) + (j & 2 ? m1 : 0);
    const uint64_t lows[2] = {std::min(m0, m1) - 1, std::max(m0, m1) - 1};
    forAnchorRuns<2>(b, e, lows, [&](uint64_t start, uint64_t run) {
        if (pp.unitPhases) {
            for (uint64_t r = 0; r < run; ++r) {
                const uint64_t i = start + r;
                const Complex g0 = amp[i + off[pp.perm[0]]];
                const Complex g1 = amp[i + off[pp.perm[1]]];
                const Complex g2 = amp[i + off[pp.perm[2]]];
                const Complex g3 = amp[i + off[pp.perm[3]]];
                amp[i + off[0]] = g0;
                amp[i + off[1]] = g1;
                amp[i + off[2]] = g2;
                amp[i + off[3]] = g3;
            }
        } else {
            for (uint64_t r = 0; r < run; ++r) {
                const uint64_t i = start + r;
                const Complex g0 = amp[i + off[pp.perm[0]]];
                const Complex g1 = amp[i + off[pp.perm[1]]];
                const Complex g2 = amp[i + off[pp.perm[2]]];
                const Complex g3 = amp[i + off[pp.perm[3]]];
                amp[i + off[0]] = pp.phase[0] * g0;
                amp[i + off[1]] = pp.phase[1] * g1;
                amp[i + off[2]] = pp.phase[2] * g2;
                amp[i + off[3]] = pp.phase[3] * g3;
            }
        }
    });
}

void
superopPerm1Range(Complex *rho, uint64_t b, uint64_t e, Complex p0,
                  Complex p1, bool unit, uint64_t kBit, uint64_t bBit)
{
    // Perm is the swap: block entry (r, s) <- f[r][s] * entry (1-r, 1-s).
    const Complex f00 = p0 * std::conj(p0);
    const Complex f01 = p0 * std::conj(p1);
    const Complex f10 = p1 * std::conj(p0);
    const Complex f11 = p1 * std::conj(p1);
    const uint64_t lows[2] = {kBit - 1, bBit - 1};
    forAnchorRuns<2>(b, e, lows, [&](uint64_t start, uint64_t run) {
        if (unit) {
            for (uint64_t r = 0; r < run; ++r) {
                const uint64_t i = start + r;
                std::swap(rho[i], rho[i + kBit + bBit]);
                std::swap(rho[i + kBit], rho[i + bBit]);
            }
        } else {
            for (uint64_t r = 0; r < run; ++r) {
                const uint64_t i = start + r;
                const Complex b00 = rho[i], b01 = rho[i + bBit];
                const Complex b10 = rho[i + kBit];
                const Complex b11 = rho[i + kBit + bBit];
                rho[i] = f00 * b11;
                rho[i + bBit] = f01 * b10;
                rho[i + kBit] = f10 * b01;
                rho[i + kBit + bBit] = f11 * b00;
            }
        }
    });
}

void
superopPerm2Range(Complex *rho, uint64_t b, uint64_t e, PermPhase pp,
                  uint64_t mk0, uint64_t mk1, uint64_t mb0, uint64_t mb1)
{
    uint64_t ketOff[4], braOff[4];
    for (int j = 0; j < 4; ++j) {
        ketOff[j] = (j & 1 ? mk0 : 0) | (j & 2 ? mk1 : 0);
        braOff[j] = (j & 1 ? mb0 : 0) | (j & 2 ? mb1 : 0);
    }
    // Destination offset and source offset per block slot, plus the
    // phase factor phase[r] * conj(phase[s]).
    uint64_t dst[16], src[16];
    Complex f[16];
    for (int r = 0; r < 4; ++r) {
        for (int s = 0; s < 4; ++s) {
            dst[r * 4 + s] = ketOff[r] + braOff[s];
            src[r * 4 + s] = ketOff[pp.perm[r]] + braOff[pp.perm[s]];
            f[r * 4 + s] = pp.phase[r] * std::conj(pp.phase[s]);
        }
    }
    uint64_t lows[4] = {std::min(mk0, mk1) - 1, std::max(mk0, mk1) - 1,
                        std::min(mb0, mb1) - 1, std::max(mb0, mb1) - 1};
    const bool unit = pp.unitPhases;
    forAnchorRuns<4>(b, e, lows, [&](uint64_t start, uint64_t run) {
        Complex g[16];
        for (uint64_t x = 0; x < run; ++x) {
            const uint64_t i = start + x;
            for (int j = 0; j < 16; ++j)
                g[j] = rho[i + src[j]];
            if (unit) {
                for (int j = 0; j < 16; ++j)
                    rho[i + dst[j]] = g[j];
            } else {
                for (int j = 0; j < 16; ++j)
                    rho[i + dst[j]] = f[j] * g[j];
            }
        }
    });
}

void
superopMat2Range(Complex *rho, uint64_t b, uint64_t e, const Complex *Sin,
                 uint64_t mk0, uint64_t mk1, uint64_t mb0, uint64_t mb1)
{
    Complex S[256];
    for (int j = 0; j < 256; ++j)
        S[j] = Sin[j];
    // Vector index v = ketSub + 4 * braSub: bit 0 -> mk0, bit 1 -> mk1,
    // bit 2 -> mb0, bit 3 -> mb1.
    uint64_t off[16];
    for (int v = 0; v < 16; ++v)
        off[v] = (v & 1 ? mk0 : 0) + (v & 2 ? mk1 : 0) +
                 (v & 4 ? mb0 : 0) + (v & 8 ? mb1 : 0);
    uint64_t lows[4] = {std::min(mk0, mk1) - 1, std::max(mk0, mk1) - 1,
                        std::min(mb0, mb1) - 1, std::max(mb0, mb1) - 1};
    forAnchorRuns<4>(b, e, lows, [&](uint64_t start, uint64_t run) {
        Complex g[16];
        for (uint64_t x = 0; x < run; ++x) {
            const uint64_t i = start + x;
            for (int v = 0; v < 16; ++v)
                g[v] = rho[i + off[v]];
            for (int vp = 0; vp < 16; ++vp) {
                const Complex *row = S + 16 * vp;
                Complex acc(0, 0);
                for (int v = 0; v < 16; ++v)
                    acc += row[v] * g[v];
                rho[i + off[vp]] = acc;
            }
        }
    });
}

} // namespace

void
applyGate1(Complex *amp, uint64_t dim, const Complex *u, int qubit,
           TaskPool *pool)
{
    const uint64_t step = uint64_t{1} << qubit;
    shardBlocks(pool, dim >> 1, [=](uint64_t b, uint64_t e) {
        gate1Range(amp, b, e, u, step);
    });
}

void
applyDiag1(Complex *amp, uint64_t dim, Complex d0, Complex d1, int qubit,
           TaskPool *pool)
{
    const uint64_t step = uint64_t{1} << qubit;
    shardBlocks(pool, dim >> 1, [=](uint64_t b, uint64_t e) {
        diag1Range(amp, b, e, d0, d1, step);
    });
}

void
applyGate2(Complex *amp, uint64_t dim, const Complex *u, int q0, int q1,
           TaskPool *pool)
{
    const uint64_t m0 = uint64_t{1} << q0;
    const uint64_t m1 = uint64_t{1} << q1;
    shardBlocks(pool, dim >> 2, [=](uint64_t b, uint64_t e) {
        gate2Range(amp, b, e, u, m0, m1);
    });
}

void
applyDiag2(Complex *amp, uint64_t dim, const Complex *d, int q0, int q1,
           TaskPool *pool)
{
    const uint64_t m0 = uint64_t{1} << q0;
    const uint64_t m1 = uint64_t{1} << q1;
    shardBlocks(pool, dim >> 2, [=](uint64_t b, uint64_t e) {
        diag2Range(amp, b, e, d, m0, m1);
    });
}

bool
isPermPhase(const Complex *u, int sub, PermPhase &out)
{
    bool unit = true;
    for (int r = 0; r < sub; ++r) {
        int col = -1;
        for (int c = 0; c < sub; ++c) {
            if (u[r * sub + c] != Complex(0, 0)) {
                if (col >= 0)
                    return false;
                col = c;
            }
        }
        if (col < 0)
            return false;
        out.perm[r] = col;
        out.phase[r] = u[r * sub + col];
        if (out.phase[r] != Complex(1, 0))
            unit = false;
    }
    out.unitPhases = unit;
    return true;
}

GateKind
classifyGate(const Complex *u, int sub, Complex *diag, PermPhase &pp)
{
    bool isDiag = true;
    for (int r = 0; r < sub && isDiag; ++r)
        for (int c = 0; c < sub; ++c)
            if (r != c && u[r * sub + c] != Complex(0, 0)) {
                isDiag = false;
                break;
            }
    if (isDiag) {
        for (int j = 0; j < sub; ++j)
            diag[j] = u[j * sub + j];
        return GateKind::Diagonal;
    }
    if (isPermPhase(u, sub, pp))
        return GateKind::PermPhase;
    return GateKind::General;
}

void
applyPermPhase1(Complex *amp, uint64_t dim, const PermPhase &pp, int qubit,
                TaskPool *pool)
{
    const uint64_t step = uint64_t{1} << qubit;
    const Complex p0 = pp.phase[0], p1 = pp.phase[1];
    const bool unit = pp.unitPhases;
    shardBlocks(pool, dim >> 1, [=](uint64_t b, uint64_t e) {
        permPhase1Range(amp, b, e, p0, p1, unit, step);
    });
}

void
applyPermPhase2(Complex *amp, uint64_t dim, const PermPhase &pp, int q0,
                int q1, TaskPool *pool)
{
    const uint64_t m0 = uint64_t{1} << q0;
    const uint64_t m1 = uint64_t{1} << q1;
    shardBlocks(pool, dim >> 2, [=](uint64_t b, uint64_t e) {
        permPhase2Range(amp, b, e, pp, m0, m1);
    });
}

void
applyGateK(Complex *amp, uint64_t dim, const CMatrix &u, const int *qubits,
           int k, KernelScratch &s)
{
    const std::size_t sub = std::size_t{1} << k;
    if (u.rows() != sub || u.cols() != sub)
        panic("applyGateK: matrix does not match qubit count");

    s.masks.resize(k);
    s.lowMasks.resize(k);
    for (int m = 0; m < k; ++m) {
        s.masks[m] = uint64_t{1} << qubits[m];
        s.lowMasks[m] = s.masks[m] - 1;
    }
    // Deposits must run lowest-position first.
    std::sort(s.lowMasks.begin(), s.lowMasks.end());

    s.offsets.resize(sub);
    for (std::size_t j = 0; j < sub; ++j) {
        uint64_t off = 0;
        for (int m = 0; m < k; ++m)
            if (j & (std::size_t{1} << m))
                off |= s.masks[m];
        s.offsets[j] = off;
    }

    s.gathered.resize(sub);
    const uint64_t nBlocks = dim >> k;
    for (uint64_t t = 0; t < nBlocks; ++t) {
        uint64_t i = t;
        for (int m = 0; m < k; ++m)
            i = depositZeroBit(i, s.lowMasks[m]);
        for (std::size_t j = 0; j < sub; ++j)
            s.gathered[j] = amp[i | s.offsets[j]];
        for (std::size_t r = 0; r < sub; ++r) {
            Complex acc(0, 0);
            for (std::size_t c = 0; c < sub; ++c)
                acc += u(r, c) * s.gathered[c];
            amp[i | s.offsets[r]] = acc;
        }
    }
}

void
applySuperop1(Complex *rho, int numQubits, const Complex *u, int qubit,
              TaskPool *pool)
{
    const uint64_t dimSq = uint64_t{1} << (2 * numQubits);
    const uint64_t kBit = uint64_t{1} << qubit;
    const uint64_t bBit = uint64_t{1} << (qubit + numQubits);
    shardBlocks(pool, dimSq >> 2, [=](uint64_t b, uint64_t e) {
        superop1Range(rho, b, e, u, kBit, bBit);
    });
}

void
applySuperopMat1(Complex *rho, int numQubits, const Complex *s, int qubit,
                 TaskPool *pool)
{
    const uint64_t dimSq = uint64_t{1} << (2 * numQubits);
    const uint64_t kBit = uint64_t{1} << qubit;
    const uint64_t bBit = uint64_t{1} << (qubit + numQubits);
    shardBlocks(pool, dimSq >> 2, [=](uint64_t b, uint64_t e) {
        superopMat1Range(rho, b, e, s, kBit, bBit);
    });
}

void
applySuperopDiag1(Complex *rho, int numQubits, const Complex *d, int qubit,
                  TaskPool *pool)
{
    const uint64_t dimSq = uint64_t{1} << (2 * numQubits);
    const uint64_t kBit = uint64_t{1} << qubit;
    const uint64_t bBit = uint64_t{1} << (qubit + numQubits);
    const Complex d0 = d[0], d1 = d[1];
    shardBlocks(pool, dimSq >> 2, [=](uint64_t b, uint64_t e) {
        superopDiag1Range(rho, b, e, d0, d1, kBit, bBit);
    });
}

void
applySuperop2(Complex *rho, int numQubits, const Complex *u, int q0,
              int q1, TaskPool *pool)
{
    const uint64_t dimSq = uint64_t{1} << (2 * numQubits);
    const uint64_t mk0 = uint64_t{1} << q0;
    const uint64_t mk1 = uint64_t{1} << q1;
    const uint64_t mb0 = uint64_t{1} << (q0 + numQubits);
    const uint64_t mb1 = uint64_t{1} << (q1 + numQubits);
    shardBlocks(pool, dimSq >> 4, [=](uint64_t b, uint64_t e) {
        superop2Range(rho, b, e, u, mk0, mk1, mb0, mb1);
    });
}

void
applySuperopDiag2(Complex *rho, int numQubits, const Complex *d, int q0,
                  int q1, TaskPool *pool)
{
    const uint64_t dimSq = uint64_t{1} << (2 * numQubits);
    const uint64_t mk0 = uint64_t{1} << q0;
    const uint64_t mk1 = uint64_t{1} << q1;
    const uint64_t mb0 = uint64_t{1} << (q0 + numQubits);
    const uint64_t mb1 = uint64_t{1} << (q1 + numQubits);
    shardBlocks(pool, dimSq >> 4, [=](uint64_t b, uint64_t e) {
        superopDiag2Range(rho, b, e, d, mk0, mk1, mb0, mb1);
    });
}

void
applySuperopPerm1(Complex *rho, int numQubits, const PermPhase &pp,
                  int qubit, TaskPool *pool)
{
    const uint64_t dimSq = uint64_t{1} << (2 * numQubits);
    const uint64_t kBit = uint64_t{1} << qubit;
    const uint64_t bBit = uint64_t{1} << (qubit + numQubits);
    const Complex p0 = pp.phase[0], p1 = pp.phase[1];
    const bool unit = pp.unitPhases;
    shardBlocks(pool, dimSq >> 2, [=](uint64_t b, uint64_t e) {
        superopPerm1Range(rho, b, e, p0, p1, unit, kBit, bBit);
    });
}

void
applySuperopPerm2(Complex *rho, int numQubits, const PermPhase &pp, int q0,
                  int q1, TaskPool *pool)
{
    const uint64_t dimSq = uint64_t{1} << (2 * numQubits);
    const uint64_t mk0 = uint64_t{1} << q0;
    const uint64_t mk1 = uint64_t{1} << q1;
    const uint64_t mb0 = uint64_t{1} << (q0 + numQubits);
    const uint64_t mb1 = uint64_t{1} << (q1 + numQubits);
    shardBlocks(pool, dimSq >> 4, [=](uint64_t b, uint64_t e) {
        superopPerm2Range(rho, b, e, pp, mk0, mk1, mb0, mb1);
    });
}

void
applySuperopMat2(Complex *rho, int numQubits, const Complex *S, int q0,
                 int q1, TaskPool *pool)
{
    const uint64_t dimSq = uint64_t{1} << (2 * numQubits);
    const uint64_t mk0 = uint64_t{1} << q0;
    const uint64_t mk1 = uint64_t{1} << q1;
    const uint64_t mb0 = uint64_t{1} << (q0 + numQubits);
    const uint64_t mb1 = uint64_t{1} << (q1 + numQubits);
    shardBlocks(pool, dimSq >> 4, [=](uint64_t b, uint64_t e) {
        superopMat2Range(rho, b, e, S, mk0, mk1, mb0, mb1);
    });
}

} // namespace detail
} // namespace eqc
