/**
 * @file
 * Shared runtime-SIMD dispatch gate for the simulation kernels.
 *
 * Hot kernels carry cpuid-dispatched AVX2 variants compiled with
 * per-function target attributes, so the default portable (x86-64
 * baseline) build still ships them and selects at run time. This
 * header centralizes the opt-in test the 1q statevector path
 * introduced so every vectorized kernel (kernel.cc, density_matrix.cc,
 * kernel_batched.cc) gates on exactly the same conditions:
 *
 *  - x86-64 with a GNU-compatible compiler (per-function target
 *    attributes and __builtin_cpu_supports are available), and
 *  - -DEQC_NO_SIMD_DISPATCH not defined (the CMake option of the same
 *    name defines it to force the scalar reference path, e.g. for the
 *    scalar CI leg or for benchmarking the scalar kernels).
 *
 * When EQC_KERNEL_X86_DISPATCH is defined, <immintrin.h> has been
 * included and cpuHasAvx2Fma() answers the runtime question. The
 * cached cpuid probe asks for AVX2 *and* FMA: the 1q statevector
 * kernel uses fused multiply-adds, and every AVX2-capable
 * microarchitecture ships FMA anyway, so a single gate keeps the
 * dispatch branch predictable everywhere.
 *
 * Note for kernel authors: lambdas do NOT inherit the enclosing
 * function's target attribute, so AVX2 loop bodies must be written in
 * plain (attributed) functions — intrinsics inside a lambda passed to
 * forAnchorRuns() fail to compile. See gate1RangeAvx2 in kernel.cc for
 * the canonical shape.
 */

#ifndef EQC_QUANTUM_SIMD_DISPATCH_H
#define EQC_QUANTUM_SIMD_DISPATCH_H

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(EQC_NO_SIMD_DISPATCH)
#define EQC_KERNEL_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace eqc {
namespace detail {

/**
 * Test-only runtime kill switch: forces every dispatch site down the
 * scalar path so equivalence tests can compare both variants bitwise
 * in one process. Present in every build (a no-op where the dispatch
 * is compiled out); not thread-safe against concurrent kernels — flip
 * it only from quiescent test code.
 */
inline bool &
simdDispatchForcedOff()
{
    static bool off = false;
    return off;
}

#ifdef EQC_KERNEL_X86_DISPATCH

/** Cached cpuid probe: this machine runs the AVX2(+FMA) variants. */
inline bool
cpuHasAvx2Fma()
{
    static const bool ok = __builtin_cpu_supports("avx2") &&
                           __builtin_cpu_supports("fma");
    return ok && !simdDispatchForcedOff();
}

/**
 * Complex multiply a * c on packed [re, im] lanes using the *exact*
 * scalar std::complex formula — mul/addsub only, deliberately no FMA:
 *   re = a.re * c.re - a.im * c.im
 *   im = a.im * c.re + a.re * c.im   (commuted sum, bitwise equal)
 * The 2q/superoperator/batched AVX2 kernel variants are built from this
 * helper plus plain adds in the scalar accumulation order, which makes
 * the vector paths *bit-identical* to the scalar kernels (not merely
 * close) — the property the batched member sweep leans on: batched and
 * per-member execution agree bitwise no matter which variant each side
 * dispatched to. (The 1q statevector kernel predates this rule and
 * keeps its fmaddsub form under the 1e-10 test envelope.)
 *
 * @p cr / @p ci broadcast the multiplier: set1 for a shared
 * coefficient, or per-128-bit-lane values to apply different
 * coefficients to the two packed complex numbers.
 */
__attribute__((target("avx2"), always_inline)) static inline __m256d
cxMul(__m256d a, __m256d cr, __m256d ci)
{
    const __m256d as = _mm256_permute_pd(a, 0x5);
    return _mm256_addsub_pd(_mm256_mul_pd(a, cr),
                            _mm256_mul_pd(as, ci));
}

/** acc + a * c, added after the full product like the scalar chain. */
__attribute__((target("avx2"), always_inline)) static inline __m256d
cxMulAdd(__m256d acc, __m256d a, __m256d cr, __m256d ci)
{
    return _mm256_add_pd(acc, cxMul(a, cr, ci));
}

#endif // EQC_KERNEL_X86_DISPATCH

} // namespace detail
} // namespace eqc

#endif // EQC_QUANTUM_SIMD_DISPATCH_H
