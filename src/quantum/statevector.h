/**
 * @file
 * Ideal (noise-free) state-vector simulator.
 *
 * Qubit 0 is the least-significant bit of the basis-state index. Gates of
 * arbitrary arity are supported through a generic gather/scatter kernel
 * with a fast path for single-qubit gates.
 */

#ifndef EQC_QUANTUM_STATEVECTOR_H
#define EQC_QUANTUM_STATEVECTOR_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "quantum/cmatrix.h"

namespace eqc {

class PauliString;
class TaskPool;

/** Pure-state simulator over n qubits. */
class Statevector
{
  public:
    /** Initialize |0...0> over @p numQubits qubits. */
    explicit Statevector(int numQubits);

    /** Number of qubits. */
    int numQubits() const { return numQubits_; }

    /** Dimension 2^n. */
    uint64_t dim() const { return uint64_t{1} << numQubits_; }

    /** Reset to |0...0>. */
    void reset();

    /**
     * Apply a k-qubit gate.
     * @param u 2^k x 2^k unitary; sub-index bit m corresponds to
     *          qubits[m] (see gateMatrix() convention)
     * @param qubits distinct target qubits
     */
    void applyGate(const CMatrix &u, const std::vector<int> &qubits);

    /// @name Allocation-free apply paths
    /// Raw-entry twins of applyGate used by precompiled execution
    /// plans (the gateEntries() layout, no CMatrix construction).
    /// @{

    /** 1q gate from row-major entries {u00, u01, u10, u11}. */
    void applyGate1(const Complex *u, int qubit);

    /** 1q diagonal gate diag(d[0], d[1]). */
    void applyDiag1(const Complex *d, int qubit);

    /** 2q gate from row-major 4x4 entries (sub-index bit 0 -> @p q0). */
    void applyGate2(const Complex *u, int q0, int q1);

    /** 2q diagonal gate diag(d[0..3]). */
    void applyDiag2(const Complex *d, int q0, int q1);

    /// @}

    /** Amplitude of basis state @p index. */
    Complex amplitude(uint64_t index) const { return amp_[index]; }

    /** Mutable raw amplitudes (for initialization in tests). */
    CVector &amplitudes() { return amp_; }
    const CVector &amplitudes() const { return amp_; }

    /** Measurement probabilities of all 2^n outcomes. */
    std::vector<double> probabilities() const;

    /** <psi | P | psi> for a Pauli string (real by Hermiticity). */
    double expectation(const PauliString &p) const;

    /** Squared norm (should be 1 up to rounding). */
    double norm() const;

    /** Rescale to unit norm. */
    void normalize();

    /** <other|this>. */
    Complex inner(const Statevector &other) const;

    /**
     * Sample measurement outcomes in the computational basis.
     * @return counts indexed by basis state, dim() entries
     */
    std::vector<uint64_t> sample(uint64_t shots, Rng &rng) const;

    /**
     * Pool used for block-parallel apply (null: the shared pool).
     * Results are bit-identical for every pool size.
     */
    void setTaskPool(TaskPool *pool) { pool_ = pool; }

  private:
    TaskPool *pool() const;

    int numQubits_;
    CVector amp_;
    mutable TaskPool *pool_ = nullptr;
};

} // namespace eqc

#endif // EQC_QUANTUM_STATEVECTOR_H
