/**
 * @file
 * Ideal (noise-free) state-vector simulator.
 *
 * Qubit 0 is the least-significant bit of the basis-state index. Gates of
 * arbitrary arity are supported through a generic gather/scatter kernel
 * with a fast path for single-qubit gates.
 */

#ifndef EQC_QUANTUM_STATEVECTOR_H
#define EQC_QUANTUM_STATEVECTOR_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "quantum/cmatrix.h"

namespace eqc {

class PauliString;

/** Pure-state simulator over n qubits. */
class Statevector
{
  public:
    /** Initialize |0...0> over @p numQubits qubits. */
    explicit Statevector(int numQubits);

    /** Number of qubits. */
    int numQubits() const { return numQubits_; }

    /** Dimension 2^n. */
    uint64_t dim() const { return uint64_t{1} << numQubits_; }

    /** Reset to |0...0>. */
    void reset();

    /**
     * Apply a k-qubit gate.
     * @param u 2^k x 2^k unitary; sub-index bit m corresponds to
     *          qubits[m] (see gateMatrix() convention)
     * @param qubits distinct target qubits
     */
    void applyGate(const CMatrix &u, const std::vector<int> &qubits);

    /** Amplitude of basis state @p index. */
    Complex amplitude(uint64_t index) const { return amp_[index]; }

    /** Mutable raw amplitudes (for initialization in tests). */
    CVector &amplitudes() { return amp_; }
    const CVector &amplitudes() const { return amp_; }

    /** Measurement probabilities of all 2^n outcomes. */
    std::vector<double> probabilities() const;

    /** <psi | P | psi> for a Pauli string (real by Hermiticity). */
    double expectation(const PauliString &p) const;

    /** Squared norm (should be 1 up to rounding). */
    double norm() const;

    /** Rescale to unit norm. */
    void normalize();

    /** <other|this>. */
    Complex inner(const Statevector &other) const;

    /**
     * Sample measurement outcomes in the computational basis.
     * @return counts indexed by basis state, dim() entries
     */
    std::vector<uint64_t> sample(uint64_t shots, Rng &rng) const;

  private:
    int numQubits_;
    CVector amp_;
};

} // namespace eqc

#endif // EQC_QUANTUM_STATEVECTOR_H
