#include "vqa/problem.h"

#include "circuit/ansatz.h"
#include "common/rng.h"
#include "hamiltonian/heisenberg.h"
#include "hamiltonian/maxcut.h"
#include "quantum/types.h"

namespace eqc {

VqaProblem
makeHeisenbergVqe(uint64_t initSeed)
{
    VqaProblem p;
    p.name = "heisenberg-vqe-4q";
    p.ansatz = hardwareEfficientAnsatz(4);
    p.hamiltonian = heisenbergHamiltonian(4, squareLattice4(), 1.0, 1.0);
    Rng rng = Rng(initSeed).fork("vqe-init");
    p.initialParams.resize(p.ansatz.numParams());
    for (double &v : p.initialParams)
        v = rng.uniform(-kPi, kPi);
    p.shots = 8192;
    return p;
}

VqaProblem
makeRingMaxCutQaoa(uint64_t initSeed)
{
    VqaProblem p;
    p.name = "maxcut-qaoa-ring4";
    MaxCutInstance inst = ringMaxCut4();
    p.ansatz = qaoaAnsatz(inst.numNodes, inst.edges, 1);
    p.hamiltonian = maxcutHamiltonian(inst);
    Rng rng = Rng(initSeed).fork("qaoa-init");
    p.initialParams.resize(p.ansatz.numParams());
    for (double &v : p.initialParams)
        v = rng.uniform(0.1, 0.6);
    p.shots = 8192;
    return p;
}

} // namespace eqc
