#include "vqa/expectation.h"

#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/task_pool.h"

namespace eqc {

QuantumCircuit
stripMeasurements(const QuantumCircuit &circuit)
{
    QuantumCircuit out(circuit.numQubits(), circuit.numParams());
    for (const GateOp &op : circuit.ops()) {
        if (op.type == GateType::MEASURE)
            continue;
        if (op.type == GateType::BARRIER) {
            out.barrier();
            continue;
        }
        out.addGate(op.type,
                    op.arity() == 2
                        ? std::vector<int>{op.qubits[0], op.qubits[1]}
                        : std::vector<int>{op.qubits[0]},
                    op.params);
    }
    return out;
}

double
idealEnergy(const QuantumCircuit &ansatz, const PauliSum &h,
            const std::vector<double> &params)
{
    Statevector sv = simulateIdeal(stripMeasurements(ansatz), params);
    double e = 0.0;
    for (const PauliTerm &t : h.terms())
        e += t.coefficient * sv.expectation(t.pauli);
    return e;
}

ExpectationEstimator::ExpectationEstimator(PauliSum hamiltonian,
                                           const QuantumCircuit &ansatz)
    : hamiltonian_(std::move(hamiltonian)),
      identityOffset_(hamiltonian_.identityOffset())
{
    if (hamiltonian_.numQubits() != ansatz.numQubits())
        fatal("ExpectationEstimator: Hamiltonian/ansatz width mismatch");

    QuantumCircuit prep = stripMeasurements(ansatz);
    const int n = prep.numQubits();

    // Group all non-identity terms; identity contributes a constant.
    PauliSum nonId(n);
    std::vector<std::size_t> nonIdIndex;
    for (std::size_t i = 0; i < hamiltonian_.terms().size(); ++i) {
        const PauliTerm &t = hamiltonian_.terms()[i];
        if (t.pauli.weight() == 0)
            continue;
        nonId.add(t.coefficient, t.pauli);
        nonIdIndex.push_back(i);
    }

    for (const auto &group : groupQubitwiseCommuting(nonId)) {
        MeasurementGroup mg;
        mg.circuit = prep;
        // Shared basis per qubit: the unique non-I factor in the group.
        std::vector<Pauli> basis(n, Pauli::I);
        for (std::size_t gi : group) {
            const PauliString &p = nonId.terms()[gi].pauli;
            uint64_t support = 0;
            for (int q = 0; q < n; ++q) {
                if (p.at(q) != Pauli::I) {
                    basis[q] = p.at(q);
                    support |= uint64_t{1} << q;
                }
            }
            mg.termIndices.push_back(nonIdIndex[gi]);
            mg.termLogicalMasks.push_back(support);
        }
        // Rotate X/Y bases to Z: X -> H; Y -> Sdg then H.
        for (int q = 0; q < n; ++q) {
            if (basis[q] == Pauli::X) {
                mg.circuit.h(q);
            } else if (basis[q] == Pauli::Y) {
                mg.circuit.sdg(q);
                mg.circuit.h(q);
            }
        }
        mg.circuit.measureAll();
        groups_.push_back(std::move(mg));
    }
}

std::vector<TranspiledCircuit>
ExpectationEstimator::compileFor(const CouplingMap &map,
                                 const TranspileOptions &opts) const
{
    std::vector<TranspiledCircuit> out;
    out.reserve(groups_.size());
    for (const MeasurementGroup &g : groups_)
        out.push_back(transpile(g.circuit, map, opts));
    return out;
}

ExpectationEstimator::GroupPartial
ExpectationEstimator::estimateGroup(
    QuantumBackend &backend, const MeasurementGroup &g,
    const TranspiledCircuit &tc, const std::vector<double> &params,
    int shots, double atTimeH, Rng &rng, ShotMode mode,
    const CalibrationSnapshot *reported) const
{
    JobResult job = backend.execute(tc, params, shots, atTimeH, rng,
                                    mode == ShotMode::Multinomial);
    return reduceGroup(g, tc, std::move(job), shots, rng, mode, reported);
}

ExpectationEstimator::GroupPartial
ExpectationEstimator::reduceGroup(
    const MeasurementGroup &g, const TranspiledCircuit &tc,
    JobResult &&job, int shots, Rng &rng, ShotMode mode,
    const CalibrationSnapshot *reported) const
{
    GroupPartial out;
    out.measurements = tc.counts.measurements;
    out.durationUs = job.circuitDurationUs;

    // The (quasi-)distribution expectations are computed from:
    // sampled counts in Multinomial mode, exact probabilities
    // otherwise; mitigated through the *reported* confusion.
    std::vector<double> dist;
    if (mode == ShotMode::Multinomial) {
        dist.assign(job.counts.size(), 0.0);
        double total = 0.0;
        for (uint64_t c : job.counts)
            total += static_cast<double>(c);
        if (total > 0.0)
            for (std::size_t o = 0; o < job.counts.size(); ++o)
                dist[o] = static_cast<double>(job.counts[o]) / total;
    } else {
        dist = std::move(job.probabilities);
    }
    if (reported) {
        for (const GateOp &op : tc.compact.ops()) {
            if (op.type != GateType::MEASURE)
                continue;
            int q = op.qubits[0];
            int phys = tc.compactToPhysical[q];
            applyReadoutMitigation(dist, q,
                                   reported->qubits[phys].readout);
        }
    }

    for (std::size_t k = 0; k < g.termIndices.size(); ++k) {
        const std::size_t ti = g.termIndices[k];
        const PauliTerm &term = hamiltonian_.terms()[ti];
        // Parity mask over compact qubits: remap the precomputed
        // logical support's set bits through the layout.
        uint64_t mask = 0;
        for (uint64_t m = g.termLogicalMasks[k]; m; m &= m - 1) {
            int q = __builtin_ctzll(m);
            mask |= uint64_t{1} << tc.logicalToCompact[q];
        }
        double exp = 0.0;
        for (std::size_t o = 0; o < dist.size(); ++o) {
            int par = __builtin_popcountll(o & mask) & 1;
            exp += par ? -dist[o] : dist[o];
        }
        if (mode == ShotMode::Gaussian && shots > 0) {
            double var = std::max(0.0, 1.0 - exp * exp) / shots;
            exp += rng.normal(0.0, std::sqrt(var));
        }
        out.energy += term.coefficient * exp;
        if (shots > 0) {
            double var = std::max(0.0, 1.0 - exp * exp) / shots;
            out.variance += term.coefficient * term.coefficient * var;
        }
    }
    return out;
}

std::vector<EnergyEstimate>
ExpectationEstimator::estimateBatch(QuantumBackend &backend,
                                    const std::vector<EstimateJob> &jobs,
                                    int shots, double atTimeH, Rng &rng,
                                    ShotMode mode, bool mitigateReadout,
                                    TaskPool *pool) const
{
    const std::size_t numGroups = groups_.size();
    for (const EstimateJob &job : jobs) {
        if (!job.compiled || !job.params ||
            job.compiled->size() != numGroups)
            panic("ExpectationEstimator::estimateBatch: "
                  "compilation mismatch");
    }

    CalibrationSnapshot reported;
    if (mitigateReadout)
        reported = backend.reportedCalibration(atTimeH);
    const CalibrationSnapshot *rep =
        mitigateReadout ? &reported : nullptr;

    // One parent draw seeds a per-execution fork lattice: every
    // (evaluation, group) circuit gets its own stream, so scheduling
    // cannot perturb the numbers and the parent stream advances the
    // same way for every batch size.
    const uint64_t forkBase = rng.engine()();

    const std::size_t flat = jobs.size() * numGroups;
    std::vector<GroupPartial> parts(flat);
    auto runRange = [&](uint64_t b, uint64_t e) {
        for (uint64_t f = b; f < e; ++f) {
            const std::size_t ji = f / numGroups;
            const std::size_t gi = f % numGroups;
            Rng jobRng = Rng(forkBase).fork(f);
            parts[f] = estimateGroup(
                backend, groups_[gi], (*jobs[ji].compiled)[gi],
                *jobs[ji].params, shots, atTimeH, jobRng, mode, rep);
        }
    };
    TaskPool &p = pool ? *pool : TaskPool::shared();
    p.parallelJobs(flat, runRange);

    std::vector<EnergyEstimate> out(jobs.size());
    for (std::size_t ji = 0; ji < jobs.size(); ++ji) {
        EnergyEstimate &e = out[ji];
        e.energy = identityOffset_;
        for (std::size_t gi = 0; gi < numGroups; ++gi) {
            const GroupPartial &part = parts[ji * numGroups + gi];
            e.energy += part.energy;
            e.variance += part.variance;
            ++e.circuitsRun;
            e.measurements += part.measurements;
            e.totalDurationUs += part.durationUs;
        }
    }
    return out;
}

std::vector<EnergyEstimate>
ExpectationEstimator::estimateEnsemble(std::vector<EnsembleLane> &lanes,
                                       const std::vector<double> &params,
                                       ShotMode mode,
                                       bool mitigateReadout,
                                       TaskPool *pool) const
{
    const std::size_t numGroups = groups_.size();
    const std::size_t numLanes = lanes.size();
    for (const EnsembleLane &lane : lanes) {
        if (!lane.backend || !lane.compiled || !lane.rng ||
            lane.compiled->size() != numGroups)
            panic("ExpectationEstimator::estimateEnsemble: "
                  "lane mismatch");
    }

    // Per-lane reported calibration and fork base, consumed in lane
    // order: each lane's rng advances by exactly one draw, exactly as
    // a sequential estimate() on that lane would leave it.
    std::vector<CalibrationSnapshot> reported;
    if (mitigateReadout) {
        reported.reserve(numLanes);
        for (const EnsembleLane &lane : lanes)
            reported.push_back(
                lane.backend->reportedCalibration(lane.atTimeH));
    }
    std::vector<uint64_t> forkBase(numLanes);
    for (std::size_t l = 0; l < numLanes; ++l)
        forkBase[l] = lanes[l].rng->engine()();

    std::vector<GroupPartial> parts(numGroups * numLanes);
    auto runRange = [&](uint64_t b, uint64_t e) {
        std::vector<Rng> rngs;
        std::vector<JobResult> jobs;
        std::vector<SimulatedQpu::BatchMember> members;
        for (uint64_t gi = b; gi < e; ++gi) {
            // Same fork lattice as estimateBatch: the (lane, group)
            // stream is Rng(forkBase).fork(gi), flowing through the
            // execution's shot sampling and then reduceGroup's
            // Gaussian draws as one object.
            rngs.clear();
            rngs.reserve(numLanes);
            for (std::size_t l = 0; l < numLanes; ++l)
                rngs.push_back(Rng(forkBase[l]).fork(gi));
            jobs.assign(numLanes, JobResult{});
            members.assign(numLanes, SimulatedQpu::BatchMember{});
            for (std::size_t l = 0; l < numLanes; ++l) {
                SimulatedQpu::BatchMember &m = members[l];
                m.qpu = lanes[l].backend;
                m.tc = &(*lanes[l].compiled)[gi];
                m.shots = lanes[l].shots;
                m.atTimeH = lanes[l].atTimeH;
                m.rng = &rngs[l];
                m.sampleCounts = mode == ShotMode::Multinomial;
                m.out = &jobs[l];
            }
            const bool batched = SimulatedQpu::executeBatch(
                members.data(), members.size(), params);
            for (std::size_t l = 0; l < numLanes; ++l) {
                if (!batched)
                    jobs[l] = lanes[l].backend->execute(
                        *members[l].tc, params, lanes[l].shots,
                        lanes[l].atTimeH, rngs[l],
                        mode == ShotMode::Multinomial);
                parts[gi * numLanes + l] = reduceGroup(
                    groups_[gi], *members[l].tc, std::move(jobs[l]),
                    lanes[l].shots, rngs[l], mode,
                    mitigateReadout ? &reported[l] : nullptr);
            }
        }
    };
    TaskPool &p = pool ? *pool : TaskPool::shared();
    p.parallelJobs(numGroups, runRange);

    std::vector<EnergyEstimate> out(numLanes);
    for (std::size_t l = 0; l < numLanes; ++l) {
        EnergyEstimate &e = out[l];
        e.energy = identityOffset_;
        for (std::size_t gi = 0; gi < numGroups; ++gi) {
            const GroupPartial &part = parts[gi * numLanes + l];
            e.energy += part.energy;
            e.variance += part.variance;
            ++e.circuitsRun;
            e.measurements += part.measurements;
            e.totalDurationUs += part.durationUs;
        }
    }
    return out;
}

EnergyEstimate
ExpectationEstimator::estimate(
    QuantumBackend &backend,
    const std::vector<TranspiledCircuit> &compiled,
    const std::vector<double> &params, int shots, double atTimeH,
    Rng &rng, ShotMode mode, bool mitigateReadout, TaskPool *pool) const
{
    if (compiled.size() != groups_.size())
        panic("ExpectationEstimator::estimate: compilation mismatch");
    return estimateBatch(backend, {{&compiled, &params}}, shots, atTimeH,
                         rng, mode, mitigateReadout, pool)[0];
}

} // namespace eqc
