/**
 * @file
 * Single-device sequential VQA trainer — the baseline every per-machine
 * curve of Figs. 6, 9, 11 and 12 comes from. One gradient job at a time
 * goes through the device's queue; the virtual clock advances by the
 * sampled job latency; training aborts when the two-week termination
 * rule fires (the paper terminated Manhattan/Santiago/Toronto runs).
 */

#ifndef EQC_VQA_TRAINER_H
#define EQC_VQA_TRAINER_H

#include <string>
#include <vector>

#include "device/backend.h"
#include "vqa/expectation.h"
#include "vqa/optimizer.h"
#include "vqa/parameter_shift.h"
#include "vqa/problem.h"

namespace eqc {

/** Knobs shared by the single-device and EQC trainers. */
struct TrainerOptions
{
    int epochs = 250;                  ///< paper: 250 VQE epochs
    double learningRate = 0.1;         ///< paper: alpha = 0.1
    ShotMode shotMode = ShotMode::Gaussian;
    ShiftMode shiftMode = ShiftMode::WholeParameter;
    /** Reported-calibration measurement-error mitigation. */
    bool readoutMitigation = true;
    /** Two-week termination rule (hours). */
    double maxHours = 336.0;
    uint64_t seed = 1;
    /** Also record ideal-simulator energy of the evolving parameters. */
    bool recordIdealEnergy = true;
};

/** One epoch of a training trace. */
struct EpochRecord
{
    int epoch = 0;
    /** Virtual completion time of the epoch (hours). */
    double timeH = 0.0;
    /** Energy estimated on the (noisy) training backend. */
    double energyDevice = 0.0;
    /** Ideal-simulator energy of the current parameters. */
    double energyIdeal = 0.0;
};

/** Full record of one training run. */
struct TrainingTrace
{
    std::string label;
    std::vector<EpochRecord> epochs;
    std::vector<double> finalParams;
    /** true when the run hit maxHours before finishing. */
    bool terminated = false;
    double totalHours = 0.0;
    double epochsPerHour = 0.0;
    int circuitEvaluations = 0;

    /** Epoch records as (epoch, energyDevice) series. */
    std::vector<double> deviceEnergySeries() const;

    /** Epoch records as (epoch, energyIdeal) series. */
    std::vector<double> idealEnergySeries() const;
};

/**
 * Train @p problem on a single simulated device.
 *
 * @param problem workload (ansatz, Hamiltonian, init params, shots)
 * @param device catalog device to train on
 * @param options trainer knobs
 */
TrainingTrace trainSingleDevice(const VqaProblem &problem,
                                const Device &device,
                                const TrainerOptions &options);

/**
 * Variationally estimate the ansatz-reachable minimum energy: two-stage
 * noise-free exact-expectation gradient descent (coarse then fine).
 * This is the reference against which the reproduction reports error
 * rates — the analogue of the paper's "Ideal Solution" line. (For the
 * Fig. 8 ansatz on the 4-qubit Heisenberg lattice this sits ~18% above
 * the true ground energy; the ansatz cannot represent the singlet.)
 */
double estimateAnsatzMinimum(const VqaProblem &problem,
                             uint64_t seed = 1);

} // namespace eqc

#endif // EQC_VQA_TRAINER_H
