#include "vqa/qnn.h"

#include <cmath>

#include "circuit/ansatz.h"
#include "common/logging.h"
#include "common/rng.h"
#include "vqa/expectation.h"

namespace eqc {

QuantumCircuit
QnnProblem::circuitFor(const QnnSample &sample) const
{
    if (static_cast<int>(sample.features.size()) != numQubits)
        fatal("QnnProblem::circuitFor: feature count != qubit count");
    QuantumCircuit c(numQubits, numParams());
    for (int q = 0; q < numQubits; ++q)
        c.ry(q, ParamExpr::constant(sample.features[q]));
    c.append(stripMeasurements(ansatz));
    c.measureAll();
    return c;
}

QnnProblem
makeSineClassifier(int numSamples, uint64_t seed)
{
    QnnProblem p;
    p.name = "qnn-sine-classifier";
    p.numQubits = 2;
    p.ansatz = stripMeasurements(hardwareEfficientAnsatz(2));
    p.observable = PauliSum(2);
    p.observable.add(1.0, PauliString::single(2, 0, Pauli::Z));

    for (int i = 0; i < numSamples; ++i) {
        double x = -kPi + (2.0 * kPi) * (i + 0.5) / numSamples;
        QnnSample s;
        // Feature on both qubits (redundant encoding helps the small
        // ansatz); labels are the sign of sin(x), shrunk to +-0.8 so
        // the target is representable without saturating rotations.
        s.features = {x, x / 2.0};
        s.label = std::sin(x) >= 0.0 ? 0.8 : -0.8;
        p.dataset.push_back(s);
    }

    Rng init = Rng(seed).fork("qnn-init");
    p.initialParams.resize(p.ansatz.numParams());
    for (double &v : p.initialParams)
        v = init.uniform(-0.5, 0.5);
    p.shots = 8192;
    return p;
}

double
qnnPredictIdeal(const QnnProblem &problem, const QnnSample &sample,
                const std::vector<double> &params)
{
    QuantumCircuit c = problem.circuitFor(sample);
    Statevector sv = simulateIdeal(stripMeasurements(c), params);
    double v = 0.0;
    for (const PauliTerm &t : problem.observable.terms())
        v += t.coefficient * sv.expectation(t.pauli);
    return v;
}

double
qnnMseIdeal(const QnnProblem &problem, const std::vector<double> &params)
{
    if (problem.dataset.empty())
        return 0.0;
    double acc = 0.0;
    for (const QnnSample &s : problem.dataset) {
        double d = qnnPredictIdeal(problem, s, params) - s.label;
        acc += d * d;
    }
    return acc / static_cast<double>(problem.dataset.size());
}

} // namespace eqc
