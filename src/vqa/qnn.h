/**
 * @file
 * Quantum neural network (QNN) workload: the third VQA family of paper
 * Sec. III-A, where EQC parallelizes *at the dataset level* — each
 * client computes the gradient of one (parameter, data point) pair and
 * the master averages contributions asynchronously:
 *
 *   dL/dtheta = (1/n) sum_i dl(x_i; theta)/dtheta
 *
 * The model is an angle-encoding regressor/classifier: RY(x_j) feature
 * encoding, a hardware-efficient trainable circuit, and a Pauli
 * observable read out as the prediction in [-1, 1]; the loss is MSE.
 */

#ifndef EQC_VQA_QNN_H
#define EQC_VQA_QNN_H

#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "quantum/pauli.h"

namespace eqc {

/** One labelled sample. */
struct QnnSample
{
    /** Feature vector; one angle per qubit. */
    std::vector<double> features;
    /** Target value in [-1, 1]. */
    double label = 0.0;
};

/** A QNN learning problem. */
struct QnnProblem
{
    std::string name;
    int numQubits = 0;
    /** Trainable circuit (no measurements; appended after encoding). */
    QuantumCircuit ansatz;
    /** Readout observable; prediction = <observable>. */
    PauliSum observable;
    std::vector<QnnSample> dataset;
    std::vector<double> initialParams;
    int shots = 8192;

    int numParams() const { return ansatz.numParams(); }

    /**
     * Full circuit for one sample: RY(feature_j) encoding on qubit j,
     * the trainable ansatz, and measurement of every qubit.
     */
    QuantumCircuit circuitFor(const QnnSample &sample) const;
};

/**
 * A small 1-feature binary classification task: x in [-pi, pi] labelled
 * by the sign of sin(x), scaled to +-0.8. Learnable to near-zero MSE by
 * the 2-qubit hardware-efficient ansatz.
 *
 * @param numSamples dataset size
 * @param seed dataset + init-parameter seed
 */
QnnProblem makeSineClassifier(int numSamples = 12, uint64_t seed = 5);

/** Prediction <O>(x; theta) on the ideal simulator. */
double qnnPredictIdeal(const QnnProblem &problem, const QnnSample &sample,
                       const std::vector<double> &params);

/** Dataset MSE on the ideal simulator. */
double qnnMseIdeal(const QnnProblem &problem,
                   const std::vector<double> &params);

} // namespace eqc

#endif // EQC_VQA_QNN_H
