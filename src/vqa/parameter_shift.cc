#include "vqa/parameter_shift.h"

#include <cmath>

#include "common/logging.h"

namespace eqc {

namespace {

/** Accumulate an estimate's bookkeeping into a gradient record. */
void
absorb(GradientEstimate &g, const EnergyEstimate &e)
{
    g.circuitsRun += e.circuitsRun;
    g.measurements += e.measurements;
    g.totalDurationUs += e.totalDurationUs;
}

/**
 * Copy @p compiled with the angle expression of occurrence @p occ of
 * parameter @p paramIndex shifted by @p delta. Occurrences are counted
 * per compiled group circuit in op order.
 */
std::vector<TranspiledCircuit>
shiftOccurrence(const std::vector<TranspiledCircuit> &compiled,
                int paramIndex, int occ, double delta)
{
    std::vector<TranspiledCircuit> out = compiled;
    for (TranspiledCircuit &tc : out) {
        int seen = 0;
        QuantumCircuit shifted(tc.compact.numQubits(),
                               tc.compact.numParams());
        for (const GateOp &op : tc.compact.ops()) {
            GateOp copy = op;
            for (ParamExpr &p : copy.params) {
                if (p.index == paramIndex) {
                    if (seen == occ)
                        p.offset += delta;
                    ++seen;
                }
            }
            if (copy.type == GateType::BARRIER) {
                shifted.barrier();
                continue;
            }
            shifted.addGate(
                copy.type,
                copy.arity() == 2
                    ? std::vector<int>{copy.qubits[0], copy.qubits[1]}
                    : std::vector<int>{copy.qubits[0]},
                copy.params);
        }
        tc.compact = std::move(shifted);
    }
    return out;
}

/** Count occurrences of a parameter across the compiled groups. */
int
countOccurrences(const std::vector<TranspiledCircuit> &compiled,
                 int paramIndex)
{
    // All group circuits share the ansatz, so occurrences per group are
    // identical; count in the first group.
    if (compiled.empty())
        return 0;
    int count = 0;
    for (const GateOp &op : compiled[0].compact.ops())
        for (const ParamExpr &p : op.params)
            if (p.index == paramIndex)
                ++count;
    return count;
}

} // namespace

GradientEstimate
gradientParamShift(const ExpectationEstimator &estimator,
                   QuantumBackend &backend,
                   const std::vector<TranspiledCircuit> &compiled,
                   const std::vector<double> &params, int paramIndex,
                   int shots, double atTimeH, Rng &rng, ShotMode shotMode,
                   ShiftMode shiftMode, bool mitigateReadout,
                   TaskPool *pool)
{
    if (paramIndex < 0 ||
        paramIndex >= static_cast<int>(params.size())) {
        panic("gradientParamShift: parameter index out of range");
    }
    GradientEstimate g;
    const double shift = kPi / 2.0;

    if (shiftMode == ShiftMode::WholeParameter) {
        std::vector<double> fwd = params, bck = params;
        fwd[paramIndex] += shift;
        bck[paramIndex] -= shift;
        // The forward/backward evaluations are independent jobs: one
        // batch fans both (and every measurement group within them)
        // through the pool.
        std::vector<EnergyEstimate> es = estimator.estimateBatch(
            backend, {{&compiled, &fwd}, {&compiled, &bck}}, shots,
            atTimeH, rng, shotMode, mitigateReadout, pool);
        absorb(g, es[0]);
        absorb(g, es[1]);
        g.gradient = (es[0].energy - es[1].energy) / 2.0;
        return g;
    }

    // PerOccurrence: sum of single-occurrence shift gradients, all
    // 2 x occurrences evaluations submitted as one batch.
    int occurrences = countOccurrences(compiled, paramIndex);
    std::vector<std::vector<TranspiledCircuit>> shifted;
    shifted.reserve(2 * static_cast<std::size_t>(occurrences));
    std::vector<EstimateJob> jobs;
    jobs.reserve(2 * static_cast<std::size_t>(occurrences));
    for (int occ = 0; occ < occurrences; ++occ) {
        shifted.push_back(
            shiftOccurrence(compiled, paramIndex, occ, shift));
        shifted.push_back(
            shiftOccurrence(compiled, paramIndex, occ, -shift));
    }
    for (const auto &circuits : shifted)
        jobs.push_back({&circuits, &params});
    std::vector<EnergyEstimate> es = estimator.estimateBatch(
        backend, jobs, shots, atTimeH, rng, shotMode, mitigateReadout,
        pool);
    for (int occ = 0; occ < occurrences; ++occ) {
        absorb(g, es[2 * occ]);
        absorb(g, es[2 * occ + 1]);
        g.gradient +=
            (es[2 * occ].energy - es[2 * occ + 1].energy) / 2.0;
    }
    return g;
}

double
idealGradient(const QuantumCircuit &ansatz, const PauliSum &h,
              const std::vector<double> &params, int paramIndex)
{
    QuantumCircuit prep = stripMeasurements(ansatz);
    auto occurrences = prep.paramOccurrences(paramIndex);
    const double shift = kPi / 2.0;
    double grad = 0.0;

    for (std::size_t opIdx : occurrences) {
        auto evalShifted = [&](double delta) {
            QuantumCircuit shifted(prep.numQubits(), prep.numParams());
            std::size_t i = 0;
            for (const GateOp &op : prep.ops()) {
                GateOp copy = op;
                if (i == opIdx) {
                    for (ParamExpr &p : copy.params)
                        if (p.index == paramIndex)
                            p.offset += delta;
                }
                if (copy.type == GateType::BARRIER) {
                    shifted.barrier();
                } else {
                    shifted.addGate(
                        copy.type,
                        copy.arity() == 2
                            ? std::vector<int>{copy.qubits[0],
                                               copy.qubits[1]}
                            : std::vector<int>{copy.qubits[0]},
                        copy.params);
                }
                ++i;
            }
            Statevector sv = simulateIdeal(shifted, params);
            double e = 0.0;
            for (const PauliTerm &t : h.terms())
                e += t.coefficient * sv.expectation(t.pauli);
            return e;
        };
        grad += (evalShifted(shift) - evalShifted(-shift)) / 2.0;
    }
    return grad;
}

} // namespace eqc
