#include "vqa/trainer.h"

#include "common/logging.h"

namespace eqc {

std::vector<double>
TrainingTrace::deviceEnergySeries() const
{
    std::vector<double> out;
    out.reserve(epochs.size());
    for (const EpochRecord &r : epochs)
        out.push_back(r.energyDevice);
    return out;
}

std::vector<double>
TrainingTrace::idealEnergySeries() const
{
    std::vector<double> out;
    out.reserve(epochs.size());
    for (const EpochRecord &r : epochs)
        out.push_back(r.energyIdeal);
    return out;
}

TrainingTrace
trainSingleDevice(const VqaProblem &problem, const Device &device,
                  const TrainerOptions &options)
{
    if (!device.canRun(problem.ansatz.numQubits()))
        fatal("trainSingleDevice: device too small for the circuit");

    TrainingTrace trace;
    trace.label = device.name;

    SimulatedQpu backend(device, options.seed);
    ExpectationEstimator estimator(problem.hamiltonian, problem.ansatz);
    auto compiled = estimator.compileFor(device.coupling);
    const int groupCount = static_cast<int>(compiled.size());

    Rng rng = Rng(options.seed).fork("train:" + device.name);
    AsgdOptimizer opt(options.learningRate);
    std::vector<double> params = problem.initialParams;

    // Representative circuit duration for latency estimation (uses the
    // base calibration; per-job durations barely move with drift).
    double durUs = circuitDurationUs(compiled[0].compact,
                                     device.baseCalibration,
                                     compiled[0].compactToPhysical);

    double tH = 0.0;
    const int numParams = problem.numParams();

    for (int epoch = 0; epoch < options.epochs; ++epoch) {
        for (int i = 0; i < numParams; ++i) {
            // One gradient job: forward+backward circuits per group.
            double latencyS = backend.queue().jobLatencyS(
                tH, durUs, problem.shots, 2 * groupCount, rng);
            tH += latencyS / 3600.0;
            GradientEstimate g = gradientParamShift(
                estimator, backend, compiled, params, i, problem.shots,
                tH, rng, options.shotMode, options.shiftMode,
                options.readoutMitigation);
            trace.circuitEvaluations += g.circuitsRun;
            opt.apply(params, i, g.gradient);
        }
        // Epoch-end diagnostic evaluation on the same device (does not
        // consume queue time, matching the EQC executor's policy so the
        // epochs/hour comparison is apples-to-apples).
        EnergyEstimate e = estimator.estimate(
            backend, compiled, params, problem.shots, tH, rng,
            options.shotMode, options.readoutMitigation);
        trace.circuitEvaluations += e.circuitsRun;

        EpochRecord rec;
        rec.epoch = epoch;
        rec.timeH = tH;
        rec.energyDevice = e.energy;
        rec.energyIdeal =
            options.recordIdealEnergy
                ? idealEnergy(problem.ansatz, problem.hamiltonian, params)
                : 0.0;
        trace.epochs.push_back(rec);

        if (tH > options.maxHours) {
            trace.terminated = true;
            break;
        }
    }

    trace.finalParams = params;
    trace.totalHours = tH;
    trace.epochsPerHour =
        tH > 0.0 ? static_cast<double>(trace.epochs.size()) / tH : 0.0;
    return trace;
}

double
estimateAnsatzMinimum(const VqaProblem &problem, uint64_t seed)
{
    TrainerOptions coarse;
    coarse.epochs = 350;
    coarse.learningRate = 0.05;
    coarse.shotMode = ShotMode::Exact;
    coarse.seed = seed;
    coarse.maxHours = 1e9;
    coarse.recordIdealEnergy = false;
    TrainingTrace t1 =
        trainSingleDevice(problem, makeIdealDevice(
                              problem.ansatz.numQubits()), coarse);

    VqaProblem refinedProblem = problem;
    refinedProblem.initialParams = t1.finalParams;
    TrainerOptions fine = coarse;
    fine.epochs = 200;
    fine.learningRate = 0.01;
    TrainingTrace t2 =
        trainSingleDevice(refinedProblem, makeIdealDevice(
                              problem.ansatz.numQubits()), fine);
    return idealEnergy(problem.ansatz, problem.hamiltonian,
                       t2.finalParams);
}

} // namespace eqc
