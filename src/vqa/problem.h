/**
 * @file
 * VQA problem bundles: ansatz + Hamiltonian + initial parameters. The
 * two factories reproduce the paper's evaluation workloads (Sec. V):
 * the 4-qubit Heisenberg VQE of Fig. 8 and the 4-node ring MaxCut QAOA
 * of Fig. 10.
 */

#ifndef EQC_VQA_PROBLEM_H
#define EQC_VQA_PROBLEM_H

#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "quantum/pauli.h"

namespace eqc {

/** One variational optimization problem instance. */
struct VqaProblem
{
    std::string name;
    QuantumCircuit ansatz;   ///< parameterized circuit with measurements
    PauliSum hamiltonian;    ///< objective observable
    std::vector<double> initialParams;
    int shots = 8192;        ///< the paper's shot count

    /** Number of trainable parameters. */
    int numParams() const { return ansatz.numParams(); }
};

/**
 * 4-qubit Heisenberg VQE (paper Sec. V-B): hardware-efficient 16-param
 * ansatz, square-lattice J=B=1 Hamiltonian, 8192 shots. Initial
 * parameters are drawn uniformly from [-pi/4, pi/4) with the given seed.
 */
VqaProblem makeHeisenbergVqe(uint64_t initSeed = 7);

/**
 * 4-node ring MaxCut QAOA (paper Sec. V-E): p=1, 2 parameters, 8192
 * shots. Initial parameters drawn uniformly from [0.1, 0.6).
 */
VqaProblem makeRingMaxCutQaoa(uint64_t initSeed = 7);

} // namespace eqc

#endif // EQC_VQA_PROBLEM_H
