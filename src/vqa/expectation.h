/**
 * @file
 * Hamiltonian expectation estimation from measurements.
 *
 * A PauliSum is partitioned into qubit-wise-commuting groups; each group
 * gets one measurement circuit (ansatz + per-qubit basis rotations +
 * measurement). Estimating <H> then costs one circuit execution per
 * group — the Pauli-string-level parallelism the paper describes for
 * VQE task decomposition (Sec. III-A).
 */

#ifndef EQC_VQA_EXPECTATION_H
#define EQC_VQA_EXPECTATION_H

#include <vector>

#include "circuit/circuit.h"
#include "device/backend.h"
#include "quantum/pauli.h"
#include "transpile/transpiler.h"

namespace eqc {

class TaskPool;

/** How measurement shot noise enters energy estimates. */
enum class ShotMode {
    Exact,       ///< no shot noise (infinite-shot limit)
    Multinomial, ///< sample real counts and estimate from them
    Gaussian,    ///< exact expectation + matched Gaussian noise (fast)
};

/** One qubit-wise-commuting measurement group. */
struct MeasurementGroup
{
    /** Indices into the Hamiltonian's term list. */
    std::vector<std::size_t> termIndices;
    /**
     * Per-term support masks over *logical* qubits (bit q set iff the
     * term acts non-trivially on qubit q), parallel to termIndices.
     * Precomputed at construction so estimate() only remaps set bits
     * through the transpiled layout instead of re-scanning every
     * Pauli string on every call.
     */
    std::vector<uint64_t> termLogicalMasks;
    /** Logical circuit: ansatz + basis rotations + measure-all. */
    QuantumCircuit circuit;
};

/** Remove MEASURE ops (ansatz builders append them by default). */
QuantumCircuit stripMeasurements(const QuantumCircuit &circuit);

/** Ideal <H> on the state prepared by @p ansatz at @p params. */
double idealEnergy(const QuantumCircuit &ansatz, const PauliSum &h,
                   const std::vector<double> &params);

/**
 * One independent evaluation of a batched estimate: a compiled circuit
 * set (compileFor() result) and a parameter binding. Both pointers must
 * outlive the estimateBatch() call.
 */
struct EstimateJob
{
    const std::vector<TranspiledCircuit> *compiled = nullptr;
    const std::vector<double> *params = nullptr;
};

/** An energy estimate and its bookkeeping. */
struct EnergyEstimate
{
    double energy = 0.0;
    /** Estimator variance across shots (0 in Exact mode). */
    double variance = 0.0;
    /** Circuits executed (== number of groups). */
    int circuitsRun = 0;
    /** Total measurement operations performed (the M of Eq. 2). */
    int measurements = 0;
    /** Summed per-circuit durations in microseconds. */
    double totalDurationUs = 0.0;
};

/**
 * Grouped estimator for one (Hamiltonian, ansatz) pair.
 *
 * Construction groups the Hamiltonian; compileFor() transpiles every
 * group circuit for a device once (circuits remain symbolically
 * parameterized); estimate() executes them with bound parameters.
 */
class ExpectationEstimator
{
  public:
    /**
     * @param hamiltonian observable to estimate
     * @param ansatz state-preparation circuit (MEASURE ops ignored)
     */
    ExpectationEstimator(PauliSum hamiltonian,
                         const QuantumCircuit &ansatz);

    /** The measurement groups (one executed circuit each). */
    const std::vector<MeasurementGroup> &groups() const { return groups_; }

    /** Hamiltonian being estimated. */
    const PauliSum &hamiltonian() const { return hamiltonian_; }

    /** Per-device compilation: one transpiled circuit per group. */
    std::vector<TranspiledCircuit>
    compileFor(const CouplingMap &map,
               const TranspileOptions &opts = {}) const;

    /**
     * Estimate <H> at @p params on @p backend.
     *
     * @param compiled result of compileFor() on the backend's device
     * @param params parameter binding
     * @param shots shots per group circuit
     * @param atTimeH virtual submission time
     * @param rng randomness for shot noise
     * @param mode shot-noise model
     * @param mitigateReadout invert the per-qubit readout confusion
     *        using the backend's *reported* calibration (standard IBMQ
     *        measurement-error mitigation; residual error remains when
     *        the reported calibration is stale)
     * @param pool fan-out pool for the per-group executions; nullptr
     *        means TaskPool::shared()
     */
    EnergyEstimate estimate(QuantumBackend &backend,
                            const std::vector<TranspiledCircuit> &compiled,
                            const std::vector<double> &params, int shots,
                            double atTimeH, Rng &rng, ShotMode mode,
                            bool mitigateReadout = true,
                            TaskPool *pool = nullptr) const;

    /**
     * Estimate <H> for several independent evaluations at once,
     * fanning the (evaluation x measurement-group) circuit executions
     * through a TaskPool — the shape of a parameter-shift gradient
     * (forward/backward pairs) and of multi-job engine fan-out.
     *
     * Each circuit execution draws from its own child generator forked
     * off one @p rng draw, so results are *identical for every thread
     * count* (including 1) and the caller's stream advances by exactly
     * one draw regardless of batch size. Results are reduced in a
     * fixed order, making the whole batch bit-deterministic.
     *
     * @param backend execution target; must tolerate concurrent
     *        execute() calls (SimulatedQpu does)
     * @param jobs evaluations to run (see EstimateJob)
     * @param pool fan-out pool; nullptr means TaskPool::shared()
     * @return one estimate per job, in job order
     */
    std::vector<EnergyEstimate>
    estimateBatch(QuantumBackend &backend,
                  const std::vector<EstimateJob> &jobs, int shots,
                  double atTimeH, Rng &rng, ShotMode mode,
                  bool mitigateReadout = true,
                  TaskPool *pool = nullptr) const;

    /**
     * One ensemble member's view of an estimate: its own backend,
     * compiled circuit set, shot budget, submission time, and rng.
     * All pointers must outlive the estimateEnsemble() call.
     */
    struct EnsembleLane
    {
        SimulatedQpu *backend = nullptr;
        const std::vector<TranspiledCircuit> *compiled = nullptr;
        int shots = 0;
        double atTimeH = 0.0;
        Rng *rng = nullptr;
    };

    /**
     * Estimate <H> at @p params on every lane at once, advancing all
     * members through each measurement-group circuit in one batched
     * density-matrix pass (SimulatedQpu::executeBatch) instead of one
     * execution per member. Groups a batched pass cannot take (members
     * disagree on a structural fork of the noise walk) fall back to
     * sequential per-lane execution for that group only.
     *
     * Bit-identity contract: the returned estimates, and the state each
     * lane's rng is left in, are identical to calling estimate() once
     * per lane in lane order with that lane's own arguments — for any
     * thread count and whether or not the batched path engaged. Each
     * lane's rng is drawn from exactly once, in lane order, to seed its
     * per-group fork lattice.
     *
     * @return one estimate per lane, in lane order
     */
    std::vector<EnergyEstimate>
    estimateEnsemble(std::vector<EnsembleLane> &lanes,
                     const std::vector<double> &params, ShotMode mode,
                     bool mitigateReadout = true,
                     TaskPool *pool = nullptr) const;

  private:
    /** Partial result of one (evaluation, group) circuit execution. */
    struct GroupPartial
    {
        double energy = 0.0;
        double variance = 0.0;
        int measurements = 0;
        double durationUs = 0.0;
    };

    GroupPartial estimateGroup(QuantumBackend &backend,
                               const MeasurementGroup &group,
                               const TranspiledCircuit &tc,
                               const std::vector<double> &params,
                               int shots, double atTimeH, Rng &rng,
                               ShotMode mode,
                               const CalibrationSnapshot *reported) const;

    /**
     * Turn one executed group circuit's JobResult into a GroupPartial:
     * distribution selection (counts vs exact), readout mitigation
     * against @p reported, per-term parity expectations, and the
     * Gaussian shot-noise draws from @p rng. Shared tail of
     * estimateGroup and the batched ensemble path.
     */
    GroupPartial reduceGroup(const MeasurementGroup &group,
                             const TranspiledCircuit &tc, JobResult &&job,
                             int shots, Rng &rng, ShotMode mode,
                             const CalibrationSnapshot *reported) const;

    PauliSum hamiltonian_;
    std::vector<MeasurementGroup> groups_;
    double identityOffset_ = 0.0;
};

} // namespace eqc

#endif // EQC_VQA_EXPECTATION_H
