#include "vqa/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace eqc {

AsgdOptimizer::AsgdOptimizer(double learningRate)
    : learningRate_(learningRate)
{
    if (learningRate <= 0.0)
        fatal("AsgdOptimizer: learning rate must be positive");
}

void
AsgdOptimizer::apply(std::vector<double> &params, int index,
                     double gradient, double weight)
{
    if (index < 0 || index >= static_cast<int>(params.size()))
        panic("AsgdOptimizer::apply: index out of range");
    double step = weight * learningRate_ * gradient;
    params[index] -= step;
    ++updates_;
    maxStep_ = std::max(maxStep_, std::fabs(step));
}

} // namespace eqc
