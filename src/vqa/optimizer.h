/**
 * @file
 * (Asynchronous) stochastic gradient descent update rule.
 *
 * Paper Eq. 12 (plain ASGD):      theta_i <- theta_i - a * g(theta_i)
 * Paper Eq. 4 (weighted, EQC):    theta_i <- theta_i - P_correct * a * g
 *
 * The optimizer is deliberately stateless beyond counters: gradients may
 * arrive out of order and stale (computed against old parameters), which
 * is precisely the partially-asynchronous regime the paper's appendix
 * proves convergent for bounded delay.
 */

#ifndef EQC_VQA_OPTIMIZER_H
#define EQC_VQA_OPTIMIZER_H

#include <cstdint>
#include <vector>

namespace eqc {

/** ASGD with per-update confidence weights. */
class AsgdOptimizer
{
  public:
    /** @param learningRate the alpha of Eqs. 4/12 (paper uses 0.1). */
    explicit AsgdOptimizer(double learningRate = 0.1);

    /**
     * Apply one weighted gradient step to parameter @p index.
     * @param params parameter vector (updated in place)
     * @param index coordinate to update
     * @param gradient gradient estimate for that coordinate
     * @param weight confidence weight (1.0 = unweighted, Eq. 12)
     */
    void apply(std::vector<double> &params, int index, double gradient,
               double weight = 1.0);

    double learningRate() const { return learningRate_; }

    /** Total updates applied. */
    uint64_t updates() const { return updates_; }

    /** Largest |weight * lr * gradient| step applied so far. */
    double maxStep() const { return maxStep_; }

  private:
    double learningRate_;
    uint64_t updates_ = 0;
    double maxStep_ = 0.0;
};

} // namespace eqc

#endif // EQC_VQA_OPTIMIZER_H
