/**
 * @file
 * Parameter-shift gradients (paper Alg. 2: the client node "generates
 * the forward and backward pass from the parameter shift rule").
 *
 * Two modes:
 *  - WholeParameter: shift theta_i by +-pi/2 everywhere it appears and
 *    take (L+ - L-)/2. This is what the paper's client does; it is
 *    exact when a parameter feeds a single rotation gate (the VQE
 *    ansatz) and an approximation when shared (QAOA).
 *  - PerOccurrence: exact gradient for shared parameters — sum of
 *    single-occurrence shifts, costing 2 evaluations per occurrence.
 */

#ifndef EQC_VQA_PARAMETER_SHIFT_H
#define EQC_VQA_PARAMETER_SHIFT_H

#include <vector>

#include "vqa/expectation.h"

namespace eqc {

/** Gradient estimation strategy. */
enum class ShiftMode {
    WholeParameter, ///< paper-faithful: one +- shift of the parameter
    PerOccurrence,  ///< exact for shared parameters
};

/** A gradient value plus its execution bookkeeping. */
struct GradientEstimate
{
    double gradient = 0.0;
    /** Circuits executed across all evaluations. */
    int circuitsRun = 0;
    /** Total measurements performed. */
    int measurements = 0;
    /** Summed circuit durations (microseconds). */
    double totalDurationUs = 0.0;
};

/**
 * Estimate d<H>/d(theta_i) on a backend via the parameter-shift rule.
 *
 * @param estimator grouped expectation estimator
 * @param backend execution target
 * @param compiled estimator.compileFor(backend device) result
 * @param params current parameter vector
 * @param paramIndex index i of the parameter to differentiate
 * @param shots shots per circuit execution
 * @param atTimeH virtual submission time
 * @param rng randomness for shot noise
 * @param shotMode shot-noise model
 * @param shiftMode gradient strategy (see ShiftMode)
 * @param mitigateReadout apply reported-calibration readout mitigation
 * @param pool fan-out pool for the independent shift evaluations
 *        (forward/backward pairs x measurement groups); nullptr means
 *        TaskPool::shared(). Results are identical for every thread
 *        count (see ExpectationEstimator::estimateBatch).
 */
GradientEstimate gradientParamShift(
    const ExpectationEstimator &estimator, QuantumBackend &backend,
    const std::vector<TranspiledCircuit> &compiled,
    const std::vector<double> &params, int paramIndex, int shots,
    double atTimeH, Rng &rng, ShotMode shotMode = ShotMode::Gaussian,
    ShiftMode shiftMode = ShiftMode::WholeParameter,
    bool mitigateReadout = true, TaskPool *pool = nullptr);

/**
 * Ideal (noise-free, infinite-shot) gradient by per-occurrence shifts
 * on the state-vector simulator; reference for tests.
 */
double idealGradient(const QuantumCircuit &ansatz, const PauliSum &h,
                     const std::vector<double> &params, int paramIndex);

} // namespace eqc

#endif // EQC_VQA_PARAMETER_SHIFT_H
