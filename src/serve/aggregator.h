/**
 * @file
 * Streaming shard aggregator with pluggable weighting.
 *
 * One job's shards come back from heterogeneous QPUs with different
 * shot counts, Eq. 2 quality scores and completion times. How the
 * per-shard estimates combine is a live research question (the paper
 * weights by Eq. 2; "How an Equi-ensemble Description Systematically
 * Outperforms the Weighted-ensemble VQE" argues the opposite default;
 * NISQ classifier work borrows majority voting from classical
 * ensembles), so the serving layer makes it a mode:
 *
 *  - FidelityWeighted: mean weighted by pCorrect x shots — the
 *    paper's Eq. 2 signal applied at aggregation time;
 *  - EquiWeighted: plain mean over surviving shards (equi-ensemble);
 *  - MajorityVote: median of the shard estimates — the robust-vote
 *    analogue for a continuous observable.
 *
 * Fault tolerance falls out of the weighting: failed shards never
 * enter the accumulator, so survivor weights renormalize by
 * construction (the divisor is the sum over survivors only).
 */

#ifndef EQC_SERVE_AGGREGATOR_H
#define EQC_SERVE_AGGREGATOR_H

#include <vector>

namespace eqc {
namespace serve {

/** How shard estimates combine into the job's answer. */
enum class AggregationMode {
    /** Mean weighted by pCorrect x shots (the paper's Eq. 2 signal). */
    FidelityWeighted,
    /** Unweighted mean over surviving shards (equi-ensemble). */
    EquiWeighted,
    /** Median of the shard estimates (ensemble voting). */
    MajorityVote,
};

/** Outcome of one shard execution. */
struct ShardResult
{
    int member = -1;
    int shots = 0;
    /** Eq. 2 score of the member at planning time. */
    double pCorrect = 0.0;
    double energy = 0.0;
    /** Estimator variance of this shard. */
    double variance = 0.0;
    /** Virtual completion time (hours). */
    double completeH = 0.0;
    /** Circuit executions this shard performed. */
    int circuitsRun = 0;
    /** The member dropped mid-job; the shard carries no estimate. */
    bool failed = false;
};

/**
 * Accumulates shard results as they stream in and combines the
 * survivors under the configured mode. add() is order-insensitive for
 * the weighted modes and deterministic for a fixed add order in all
 * modes (the ServiceNode adds in shard-plan order).
 */
class Aggregator
{
  public:
    explicit Aggregator(AggregationMode mode) : mode_(mode) {}

    /** Record one shard. Failed shards count only toward failures(). */
    void add(const ShardResult &shard);

    /** true once at least one surviving shard has been added. */
    bool haveResult() const { return !ok_.empty(); }

    /** Combined estimate under the mode (0 with no survivors). */
    double energy() const;

    /**
     * Variance of the combined estimate, treating shards as
     * independent: sum(w_i^2 var_i) / (sum w_i)^2 with the mode's
     * weights (MajorityVote reports the equi-weighted variance).
     */
    double variance() const;

    /** Shot-weighted mean pCorrect of the survivors. */
    double pCorrect() const;

    /** Latest survivor completion time (0 with no survivors). */
    double completeH() const;

    /** Shots executed by survivors. */
    int shotsExecuted() const;

    /** Surviving shard count. */
    int shardsExecuted() const { return static_cast<int>(ok_.size()); }

    /** Failed shard count. */
    int failures() const { return failures_; }

    /** Total circuit executions across survivors. */
    int circuitsRun() const;

    /** Survivor with the most shots (ties: lower member id); -1 if none. */
    int primaryMember() const;

    AggregationMode mode() const { return mode_; }

  private:
    double weightOf(const ShardResult &s) const;

    AggregationMode mode_;
    std::vector<ShardResult> ok_;
    int failures_ = 0;
};

} // namespace serve
} // namespace eqc

#endif // EQC_SERVE_AGGREGATOR_H
