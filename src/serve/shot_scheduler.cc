#include "serve/shot_scheduler.h"

#include <algorithm>
#include <cmath>

namespace eqc {
namespace serve {

std::vector<ShardPlan>
ShotScheduler::plan(const std::vector<MemberView> &members,
                    int totalShots) const
{
    std::vector<ShardPlan> out;
    if (totalShots <= 0)
        return out;

    struct Cand
    {
        int member;
        double weight;
        double share = 0.0;
    };
    const double warmBoost = std::max(options_.warmBoost, 1.0);
    std::vector<Cand> cands;
    for (const MemberView &m : members) {
        if (!m.available)
            continue;
        double lat = std::max(m.expectedLatencyS, options_.minLatencyS);
        double w = std::max(m.pCorrect, 0.0) / lat;
        if (m.planWarm)
            w *= warmBoost;
        w *= std::max(m.rateScale, 0.0);
        cands.push_back(Cand{m.member, w});
    }
    if (cands.empty())
        return out;

    // All-zero weights (e.g. every reported calibration is hopeless):
    // fall back to an even split rather than starving the job.
    double wsum = 0.0;
    for (const Cand &c : cands)
        wsum += c.weight;
    if (wsum <= 0.0) {
        for (Cand &c : cands)
            c.weight = 1.0;
        wsum = static_cast<double>(cands.size());
    }

    // Drop members whose proportional share would round to a
    // statistically worthless shard, redistributing to the rest.
    // Removing the smallest share only grows the others, so one pass
    // from the bottom converges.
    auto shares = [&] {
        for (Cand &c : cands)
            c.share = totalShots * c.weight / wsum;
    };
    shares();
    while (cands.size() > 1) {
        auto min = std::min_element(
            cands.begin(), cands.end(), [](const Cand &a, const Cand &b) {
                return a.share < b.share;
            });
        if (min->share >= static_cast<double>(std::min(
                              options_.minShardShots, totalShots)))
            break;
        wsum -= min->weight;
        cands.erase(min);
        if (wsum <= 0.0) {
            for (Cand &c : cands)
                c.weight = 1.0;
            wsum = static_cast<double>(cands.size());
        }
        shares();
    }

    // Largest-remainder rounding: floors first, then the leftover
    // shots to the largest fractional parts (ties: lower member id).
    std::vector<int> shots(cands.size());
    int assigned = 0;
    for (std::size_t i = 0; i < cands.size(); ++i) {
        shots[i] = static_cast<int>(std::floor(cands[i].share));
        assigned += shots[i];
    }
    std::vector<std::size_t> order(cands.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  double fa = cands[a].share - std::floor(cands[a].share);
                  double fb = cands[b].share - std::floor(cands[b].share);
                  if (fa != fb)
                      return fa > fb;
                  return cands[a].member < cands[b].member;
              });
    for (std::size_t k = 0; assigned < totalShots; ++k) {
        ++shots[order[k % order.size()]];
        ++assigned;
    }

    for (std::size_t i = 0; i < cands.size(); ++i)
        if (shots[i] > 0)
            out.push_back(ShardPlan{cands[i].member, shots[i]});
    std::sort(out.begin(), out.end(),
              [](const ShardPlan &a, const ShardPlan &b) {
                  return a.member < b.member;
              });
    return out;
}

} // namespace serve
} // namespace eqc
