/**
 * @file
 * The "service" execution engine: EQC training served through the
 * multi-tenant ServiceNode instead of per-client gradient jobs.
 *
 * Where the paper's deployment hands each ensemble member a whole
 * gradient task (asynchronous, stale updates), the service engine
 * routes every gradient through the serving path: the master submits
 * the forward and backward parameter-shift evaluations as jobs, the
 * ServiceNode shards each evaluation's shot budget across the whole
 * ensemble (queue-aware, Eq. 2-weighted), failed members requeue onto
 * survivors, and the aggregated estimates produce one gradient that
 * is applied synchronously. The trade the mode makes is the
 * synchronous-SGD one: no gradient staleness, at the price of waiting
 * for the slowest shard — and it exercises the whole serving stack
 * under a real optimization workload.
 *
 * Implements the makeServiceEngine() factory that core/engine.h
 * declares (core includes no serve header; the layering stays
 * one-directional at the include level).
 *
 * The engine ticks the node's event loop on the run's *shared clock*
 * (RunContext::clock): each training step submits its parameter-shift
 * evaluations as jobs — scheduling intake events — and drains the
 * loop until idle, which advances the shared clock through every
 * shard completion to the step's completion hour. Training time and
 * serving time are the same timeline by construction.
 *
 * Deterministic: the engine runs on a virtual clock and the node's
 * event loop replays bit-identically for every thread count, so the
 * trace is reproducible for any EqcOptions::engineThreads.
 */

#include <algorithm>
#include <memory>
#include <vector>

#include "common/task_pool.h"
#include "core/engine.h"
#include "quantum/types.h"
#include "serve/service_node.h"

namespace eqc {

namespace {

using serve::JobOutcome;
using serve::JobRequest;
using serve::ServiceNode;
using serve::ServiceOptions;
using serve::Ticket;
using serve::WorkloadId;

class ServiceEngine final : public ExecutionEngine
{
  public:
    std::string name() const override { return "service"; }

    void
    run(RunContext &ctx) override
    {
        ctx.trace().label = "EQC-service";

        std::unique_ptr<TaskPool> own;
        if (ctx.options().engineThreads > 0)
            own = std::make_unique<TaskPool>(
                ctx.options().engineThreads);
        TaskPool &pool = own ? *own : TaskPool::shared();
        ctx.setEnginePool(&pool);

        // The node fronts the ensemble's own devices in client order,
        // so member index == RunContext client index and outcomes map
        // straight onto the trace's per-client telemetry.
        std::vector<Device> devices;
        for (std::size_t ci = 0; ci < ctx.numClients(); ++ci)
            devices.push_back(ctx.ensemble().client(ci).device());

        ServiceOptions sopts;
        sopts.seed = ctx.options().seed;
        sopts.shotMode = ctx.options().client.shotMode;
        sopts.pCorrectMode = ctx.options().client.pCorrectMode;
        sopts.readoutMitigation =
            ctx.options().client.readoutMitigation;
        // The weighting hook: the master's weight bounds choose the
        // aggregation flavour — Eq. 2 fidelity weighting when bounded
        // weighting is on, equi-ensemble otherwise.
        sopts.aggregation =
            ctx.options().master.weightBounds.enabled()
                ? serve::AggregationMode::FidelityWeighted
                : serve::AggregationMode::EquiWeighted;
        // The node serves on the run's shared clock: intake, shard
        // completion and finalize events advance the same timeline
        // the master's epochs are recorded on.
        ServiceNode node(devices, sopts, &ctx.clock());
        WorkloadId wl = node.registerWorkload(
            ctx.problem().ansatz, ctx.problem().hamiltonian);

        const int shots = ctx.options().client.shots;
        double nowH = ctx.clock().nowH();
        while (!ctx.done() && nowH <= ctx.options().maxHours) {
            GradientTask task = ctx.master().nextTask();

            // Whole-parameter shift rule (the paper's client mode):
            // two sharded evaluations at theta +- pi/2.
            JobRequest req;
            req.tenantId = 0;
            req.workload = wl;
            req.shots = shots;
            req.submitH = nowH;
            req.params = task.params;
            req.params[task.paramIndex] += kPi / 2.0;
            Ticket fwd = node.submit(req);
            req.params = task.params;
            req.params[task.paramIndex] -= kPi / 2.0;
            Ticket bwd = node.submit(req);

            std::vector<JobOutcome> outcomes = node.drain(&pool);
            const JobOutcome *plus = nullptr, *minus = nullptr;
            for (const JobOutcome &o : outcomes) {
                if (o.jobId == fwd.jobId)
                    plus = &o;
                if (o.jobId == bwd.jobId)
                    minus = &o;
            }
            if (!plus || !minus)
                break; // ensemble gone: nothing more can complete

            double completeH =
                std::max(plus->completeH, minus->completeH);
            std::size_t primary =
                plus->primaryMember >= 0
                    ? static_cast<std::size_t>(plus->primaryMember)
                    : 0;

            ClientNode::Processed p;
            p.result.paramIndex = task.paramIndex;
            p.result.gradient =
                (plus->energy - minus->energy) / 2.0;
            p.result.pCorrect =
                0.5 * (plus->pCorrect + minus->pCorrect);
            p.result.clientId = static_cast<int>(primary);
            p.result.version = task.version;
            p.result.completionTimeH = completeH;
            p.result.circuitsRun =
                plus->circuitsRun + minus->circuitsRun;
            p.latencyH = completeH - nowH;

            ctx.applyResult(primary, p, completeH);
            nowH = completeH;
        }

        ctx.finish();
        ctx.setEnginePool(nullptr);
    }
};

} // namespace

std::unique_ptr<ExecutionEngine>
makeServiceEngine()
{
    return std::make_unique<ServiceEngine>();
}

} // namespace eqc
