/**
 * @file
 * Shared types of the eqc::serve subsystem — the multi-tenant front
 * door of the runtime.
 *
 * The paper's deployment is one master training one VQA against an
 * ensemble of cloud QPUs. The serving layer generalizes that to the
 * ROADMAP's "heavy traffic from millions of users" shape: many tenants
 * submit expectation-estimation jobs (circuit + binding + shot budget +
 * priority) against one shared ensemble. A ServiceNode admits jobs into
 * a JobQueue, coalesces identical work across tenants, shards each
 * job's shot budget across ensemble members (ShotScheduler), executes
 * the shards through a TaskPool, and combines per-shard estimates with
 * a pluggable Aggregator — renormalizing weights over survivors when a
 * QPU drops mid-job.
 */

#ifndef EQC_SERVE_SERVICE_H
#define EQC_SERVE_SERVICE_H

#include <cstdint>
#include <vector>

namespace eqc {
namespace serve {

/** Identifier of a registered (ansatz, observable) workload. */
using WorkloadId = int;

/** One tenant request: estimate a workload's observable at a binding. */
struct JobRequest
{
    /** Tenant the job belongs to (admission quotas are per tenant). */
    int tenantId = 0;
    /** Workload from ServiceNode::registerWorkload. */
    WorkloadId workload = -1;
    /** Parameter binding for the workload's ansatz. */
    std::vector<double> params;
    /** Total shot budget, sharded across ensemble members. */
    int shots = 8192;
    /** Higher runs earlier; ties break by submit time, then job id. */
    int priority = 0;
    /** Virtual submission time (hours). */
    double submitH = 0.0;
    /**
     * Optional latency SLO: model hour by which the tenant needs an
     * answer. <= 0 means no deadline. A job whose deadline passes
     * before its work item completes is shed gracefully: shards not
     * yet resolved are abandoned, the outcome is finalized from the
     * completed shards under equi-weighted fallback aggregation, and
     * the outcome carries shed = true with the abandoned shot count.
     */
    double deadlineH = 0.0;
    /**
     * Optional trace correlation id. 0 (the default) means "use the
     * assigned job id". Routers and clients that re-submit a request
     * (forwarding, retries) set this so every hop of one logical job
     * shares a trace in the observability tooling. Never serialized
     * into replay journals.
     */
    uint64_t traceId = 0;
};

/** Admission verdict for one submitted job. */
enum class AdmitStatus {
    Admitted,
    /** The queue is at AdmissionPolicy::maxQueueDepth. */
    RejectedQueueFull,
    /** The tenant is at AdmissionPolicy::maxQueuedPerTenant. */
    RejectedTenantQuota,
    /** Unknown workload, binding arity mismatch, or bad shot budget. */
    RejectedBadRequest,
    /** The request's deadlineH had already passed at submission. */
    RejectedDeadline,
};

/** Submission receipt. */
struct Ticket
{
    /** Assigned job id (0 when rejected). */
    uint64_t jobId = 0;
    AdmitStatus status = AdmitStatus::RejectedBadRequest;

    /**
     * Backpressure hint on capacity rejections (queue full / tenant
     * quota): seconds after which a resubmission has a realistic
     * chance of admission, derived from the live ensemble's
     * queue-model wait estimates at the current backlog
     * (QueueModel::expectedWaitS). Monotone in queue depth — the
     * deeper the backlog at rejection, the longer the hint. 0 when
     * admitted or malformed (retrying a bad request won't help).
     */
    double retryAfterS = 0.0;

    bool admitted() const { return status == AdmitStatus::Admitted; }
};

/** Completed-job record handed back by ServiceNode::drain. */
struct JobOutcome
{
    uint64_t jobId = 0;
    int tenantId = 0;
    WorkloadId workload = -1;

    /** Aggregated observable estimate (see AggregationMode). */
    double energy = 0.0;
    /** Variance of the aggregated estimate. */
    double variance = 0.0;
    /** Shot-weighted Eq. 2 score of the surviving shards. */
    double pCorrect = 0.0;

    double submitH = 0.0;
    /** Completion of the last surviving shard (or cache-hit time). */
    double completeH = 0.0;
    /** completeH - submitH, clamped at 0 for coalesced riders. */
    double latencyH = 0.0;

    /** Shots actually executed by the backing work item. */
    int shotsExecuted = 0;
    /** Surviving shards the estimate was aggregated from. */
    int shardsExecuted = 0;
    /** Shards requeued to surviving members after a QPU failure. */
    int requeues = 0;
    /** Circuit executions performed for the backing work item. */
    int circuitsRun = 0;

    /** Member that executed the largest shard (-1 on a cache hit). */
    int primaryMember = -1;

    /** Rode an identical (workload, binding) tenant's execution. */
    bool coalesced = false;
    /** Served from the cross-drain result cache (no execution). */
    bool fromCache = false;
    /**
     * Fewer shots than requested were executed: requeue rounds were
     * exhausted under cascading member failures, no member survived,
     * or the job's deadline forced a shed. The energy is still the
     * best aggregate available.
     */
    bool degraded = false;

    /** The job's requested deadline (0 when none was set). */
    double deadlineH = 0.0;
    /** Shots abandoned when the deadline shed this work item. */
    int shedShots = 0;
    /**
     * The deadline fired before the work item completed: the estimate
     * is an equi-weighted aggregate of the shards that had finished by
     * the deadline (possibly none).
     */
    bool shed = false;
};

/** Monotone service-wide counters. */
struct ServiceCounters
{
    uint64_t jobsAdmitted = 0;
    uint64_t jobsRejected = 0;
    /** Rejections because the node-wide queue was at capacity. */
    uint64_t rejectedQueueFull = 0;
    /** Rejections because the tenant was at its quota. */
    uint64_t rejectedTenantQuota = 0;
    /** Rejections for malformed requests (no retry-after hint). */
    uint64_t rejectedBadRequest = 0;
    /** Rejections because the deadline had passed at submission. */
    uint64_t rejectedDeadline = 0;
    /** Jobs that rode another tenant's identical work item. */
    uint64_t jobsCoalesced = 0;
    /** Jobs answered from the result cache. */
    uint64_t cacheHits = 0;
    /** Distinct work items executed. */
    uint64_t workItems = 0;
    uint64_t shardsExecuted = 0;
    uint64_t shardsRequeued = 0;
    uint64_t shotsExecuted = 0;
    uint64_t circuitsExecuted = 0;

    /** Jobs with a deadline that completed inside it. */
    uint64_t deadlinesMet = 0;
    /** Work items shed by a deadline event. */
    uint64_t deadlineSheds = 0;
    /** Shots abandoned across all deadline sheds. */
    uint64_t shotsShed = 0;
    /** Jobs that joined an already-dispatched work item mid-flight. */
    uint64_t ridersJoined = 0;
    /** Members added live via addMember. */
    uint64_t memberJoins = 0;
    /** Members retired live via removeMember. */
    uint64_t memberLeaves = 0;
    /** Automatic restores performed by the supervision path. */
    uint64_t supervisedRestores = 0;
};

} // namespace serve
} // namespace eqc

#endif // EQC_SERVE_SERVICE_H
