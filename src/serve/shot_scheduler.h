/**
 * @file
 * Shot-sharding scheduler: split one job's shot budget across ensemble
 * members in proportion to expected quality per unit of waiting.
 *
 * Each member is scored rate = pCorrect / expectedLatencyS, where the
 * latency estimate comes from the device queue model's deterministic
 * query API (QueueModel::expectedLatencyS) and is monotone in the
 * member's current queue depth — so a backlogged QPU automatically
 * sheds shots onto idle peers, and a high-fidelity device attracts
 * more of the budget (the Eq. 2 signal the paper weights gradients
 * by, applied at sharding time instead). Largest-remainder rounding
 * keeps the allocation exact: the shard shots always sum to the
 * requested budget.
 *
 * Placement is additionally *cache-aware*: a member whose backend
 * already holds a compiled execution plan for the workload (the
 * planCacheContains() probe, surfaced as MemberView::planWarm) gets
 * its rate multiplied by warmBoost — re-requested workloads gravitate
 * to the members that can start without recompiling, while cold
 * members still receive work whenever their quality/latency rate
 * carries them past the boost.
 */

#ifndef EQC_SERVE_SHOT_SCHEDULER_H
#define EQC_SERVE_SHOT_SCHEDULER_H

#include <vector>

namespace eqc {
namespace serve {

/** Scheduler view of one ensemble member at planning time. */
struct MemberView
{
    /** Member index in the ServiceNode. */
    int member = -1;
    /** Eq. 2 score against the reported calibration. */
    double pCorrect = 0.0;
    /** Depth-aware deterministic latency estimate (seconds). */
    double expectedLatencyS = 1.0;
    /** false excludes the member (failed, ineligible, cooled down). */
    bool available = true;
    /** The member's plan cache is already warm for this workload. */
    bool planWarm = false;
    /**
     * Rate multiplier in [0, 1] applied after everything else. The
     * node uses it to cold-start freshly joined members: they ramp
     * from coldStartPenalty to 1.0 over coldStartH hours, so a
     * just-joined QPU doesn't instantly absorb a full budget share
     * while its live behavior is still unobserved. 1.0 = full weight.
     */
    double rateScale = 1.0;
};

/** One planned shard: @p shots of the budget on @p member. */
struct ShardPlan
{
    int member = -1;
    int shots = 0;
};

/** Scheduler knobs. */
struct ShotSchedulerOptions
{
    /**
     * Shards smaller than this are dropped and their shots
     * redistributed — a 12-shot shard costs a full queue wait for
     * statistically worthless data.
     */
    int minShardShots = 64;
    /** Floor of the latency divisor (guards near-zero estimates). */
    double minLatencyS = 1.0;
    /**
     * Rate multiplier for members whose plan cache is warm for the
     * workload (MemberView::planWarm). 1.0 disables cache-aware
     * placement; values below 1 are clamped to 1 (a warm cache never
     * argues for *less* work).
     */
    double warmBoost = 1.25;
    /**
     * Weight floor a freshly joined member starts at (fraction of its
     * steady-state rate). The ServiceNode turns this and coldStartH
     * into MemberView::rateScale when planning near a join hour.
     */
    double coldStartPenalty = 0.35;
    /** Hours a joined member takes to ramp to full weight. */
    double coldStartH = 0.25;
};

/** Stateless shard planner (see file comment). */
class ShotScheduler
{
  public:
    explicit ShotScheduler(ShotSchedulerOptions options = {})
        : options_(options)
    {
    }

    /**
     * Split @p totalShots across the available members of @p members.
     * Returns one ShardPlan per member that received shots, in member
     * order; the shot counts sum to @p totalShots exactly. Empty when
     * no member is available.
     */
    std::vector<ShardPlan> plan(const std::vector<MemberView> &members,
                                int totalShots) const;

    const ShotSchedulerOptions &options() const { return options_; }

  private:
    ShotSchedulerOptions options_;
};

} // namespace serve
} // namespace eqc

#endif // EQC_SERVE_SHOT_SCHEDULER_H
