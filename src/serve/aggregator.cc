#include "serve/aggregator.h"

#include <algorithm>
#include <cmath>

namespace eqc {
namespace serve {

void
Aggregator::add(const ShardResult &shard)
{
    if (shard.failed) {
        ++failures_;
        return;
    }
    ok_.push_back(shard);
}

double
Aggregator::weightOf(const ShardResult &s) const
{
    switch (mode_) {
    case AggregationMode::FidelityWeighted:
        return std::max(s.pCorrect, 0.0) *
               static_cast<double>(std::max(s.shots, 0));
    case AggregationMode::EquiWeighted:
    case AggregationMode::MajorityVote:
        return 1.0;
    }
    return 1.0;
}

double
Aggregator::energy() const
{
    if (ok_.empty())
        return 0.0;
    if (mode_ == AggregationMode::MajorityVote) {
        std::vector<double> es;
        es.reserve(ok_.size());
        for (const ShardResult &s : ok_)
            es.push_back(s.energy);
        std::sort(es.begin(), es.end());
        std::size_t n = es.size();
        return n % 2 == 1 ? es[n / 2]
                          : 0.5 * (es[n / 2 - 1] + es[n / 2]);
    }
    double wsum = 0.0, esum = 0.0;
    for (const ShardResult &s : ok_) {
        double w = weightOf(s);
        wsum += w;
        esum += w * s.energy;
    }
    if (wsum <= 0.0) {
        // Every survivor weight degenerate: renormalize to the plain
        // mean rather than inventing a zero energy.
        for (const ShardResult &s : ok_)
            esum += s.energy;
        return esum / static_cast<double>(ok_.size());
    }
    return esum / wsum;
}

double
Aggregator::variance() const
{
    if (ok_.empty())
        return 0.0;
    double wsum = 0.0, vsum = 0.0;
    for (const ShardResult &s : ok_) {
        double w = mode_ == AggregationMode::MajorityVote
                       ? 1.0
                       : weightOf(s);
        wsum += w;
        vsum += w * w * s.variance;
    }
    if (wsum <= 0.0)
        return 0.0;
    return vsum / (wsum * wsum);
}

double
Aggregator::pCorrect() const
{
    double shots = 0.0, sum = 0.0;
    for (const ShardResult &s : ok_) {
        shots += static_cast<double>(s.shots);
        sum += static_cast<double>(s.shots) * s.pCorrect;
    }
    return shots > 0.0 ? sum / shots : 0.0;
}

double
Aggregator::completeH() const
{
    double t = 0.0;
    for (const ShardResult &s : ok_)
        t = std::max(t, s.completeH);
    return t;
}

int
Aggregator::shotsExecuted() const
{
    int n = 0;
    for (const ShardResult &s : ok_)
        n += s.shots;
    return n;
}

int
Aggregator::circuitsRun() const
{
    int n = 0;
    for (const ShardResult &s : ok_)
        n += s.circuitsRun;
    return n;
}

int
Aggregator::primaryMember() const
{
    int best = -1, bestShots = -1;
    for (const ShardResult &s : ok_) {
        if (s.shots > bestShots ||
            (s.shots == bestShots && s.member < best)) {
            best = s.member;
            bestShots = s.shots;
        }
    }
    return best;
}

} // namespace serve
} // namespace eqc
