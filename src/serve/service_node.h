/**
 * @file
 * ServiceNode — the multi-tenant front end of the EQC runtime.
 *
 * One node fronts one ensemble of QPUs and serves expectation-
 * estimation jobs from many tenants. The node is *event-driven*: it
 * owns an eqc::EventLoop on a pluggable Clock, and every stage of a
 * job's lifecycle is an event on that loop —
 *
 *   submit     -> admission control (JobQueue; capacity rejections
 *                 carry a retry-after backpressure hint) and an
 *                 intake event is scheduled
 *   intake     -> coalesce identical (workload, binding) work items,
 *                 probe the result cache, shard each executing item's
 *                 shot budget across members (ShotScheduler over
 *                 queue-model wait estimates, Eq. 2 calibration
 *                 scores, and plan-cache warmth), fan the shard
 *                 computations out through a TaskPool
 *   completion -> one event per shard at its own completion hour:
 *                 members make progress independently — there is no
 *                 global round barrier
 *   requeue    -> a member that died mid-shard surfaces as a timeout
 *                 event; the lost shots replan onto survivors
 *   finalize   -> when an item's last shard resolves, shard results
 *                 aggregate (Aggregator, pluggable weighting) in
 *                 shard-sequence order and every rider completes
 *
 * Under a VirtualClock the loop replays deterministically: identical
 * submission sequences produce identical outcomes, bit for bit,
 * regardless of EQC_THREADS (shard randomness is forked from (work
 * uid, shard seq), pure ids; aggregation order is shard-sequence
 * order; planning happens in pop order at intake). Drains are also
 * bit-identical to the pre-event-loop synchronous drain whenever at
 * most one work item of a batch loses shards — the verified
 * determinism/coalescing/cache/requeue scenarios; when several items
 * fail concurrently, replacement planning now runs in
 * failure-detection order instead of item pop order (that reordering
 * *is* the round barrier's removal), still deterministically. Under
 * a SteadyClock the same code serves in real time: events fire at
 * wall deadlines and cache TTLs mean wall time.
 *
 * drain() survives as the batch entry point: "run the loop until
 * idle, hand back the completed outcomes".
 */

#ifndef EQC_SERVE_SERVICE_NODE_H
#define EQC_SERVE_SERVICE_NODE_H

#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/event_loop.h"
#include "common/mpmc_queue.h"
#include "common/stats.h"
#include "core/weighting.h"
#include "device/backend.h"
#include "obs/metrics.h"
#include "serve/aggregator.h"
#include "serve/coalescer.h"
#include "serve/job_queue.h"
#include "serve/shot_scheduler.h"
#include "vqa/expectation.h"

namespace eqc {

class TaskPool;

namespace replay {
class JournalSink;
} // namespace replay

namespace serve {

/** Full configuration of one ServiceNode. */
struct ServiceOptions
{
    AdmissionPolicy admission;
    ShotSchedulerOptions scheduler;
    AggregationMode aggregation = AggregationMode::FidelityWeighted;
    ShotMode shotMode = ShotMode::Gaussian;
    PCorrectMode pCorrectMode = PCorrectMode::Physical;
    /** Reported-calibration readout-error mitigation. */
    bool readoutMitigation = true;
    /**
     * Rounds of shard requeueing after member failures before a work
     * item completes with whatever survived.
     */
    int maxRequeueRounds = 4;
    /** Result-cache TTL in serving-clock hours (0 disables reuse). */
    double resultCacheTtlH = 0.0;
    std::size_t resultCacheCapacity = 256;
    /**
     * When no member can plan a fresh work item, park it and retry
     * every this many hours (a member may restore or join meanwhile)
     * instead of finalizing empty immediately. Bounded by
     * maxRequeueRounds park rounds so drains always terminate.
     * 0 keeps the legacy immediate empty-degraded finalize.
     */
    double retryUnplannableH = 0.0;
    /**
     * Supervised restore: a failed member is automatically restored
     * after base * 2^consecutiveFails hours (capped below), modeling a
     * watchdog that reboots flapping QPUs with exponential backoff.
     * 0 disables supervision (the default; restores stay manual).
     */
    double superviseBaseBackoffH = 0.0;
    /** Cap of the supervised-restore backoff (hours). */
    double superviseMaxBackoffH = 2.0;
    /** Reservoir size of the latency percentile estimator. */
    std::size_t latencyReservoir = 4096;
    /**
     * Execute each work item's alive shards as one batched member
     * sweep (ExpectationEstimator::estimateEnsemble): the members'
     * density matrices advance together through each group circuit
     * instead of once per member. Bit-identical outcomes to the
     * sequential path — per-shard RNG streams still fork from
     * (work uid, shard seq) — just faster when shards per item >= 2.
     */
    bool batchedSweep = false;
    /** Root seed; every stochastic stream forks from it by label. */
    uint64_t seed = 1;
    /**
     * First job id this node assigns. A Router gives every node a
     * disjoint id span (node i starts at i * 2^32 + 1) so job ids stay
     * globally unique across a federation and journals merge without
     * ambiguity. 1 (the default) keeps single-node ids unchanged.
     */
    uint64_t firstJobId = 1;
    /** First work-item uid, spanned the same way as firstJobId. */
    uint64_t firstWorkUid = 1;
};

/**
 * Placement-relevant load of one node at a glance — what a Router
 * consults when choosing an overflow-forward target. Captures the
 * signals the ShotScheduler's own placement weighs (backlog depth,
 * plan-cache warmth, cold-start membership) which are otherwise
 * invisible outside the node.
 */
struct NodeLoad
{
    /** Jobs admitted but not yet taken into a work item. */
    std::size_t queuedJobs = 0;
    /** Work items in flight (executing or parked). */
    std::size_t activeItems = 0;
    /** Planned shards whose completion event has not fired yet. */
    int inflightShards = 0;
    /** Members eligible for planning right now. */
    std::size_t aliveMembers = 0;
    /**
     * (workload, member) pairs whose transpiled circuits sit warm in
     * the member's plan cache — work forwarded here skips the
     * compilation penalty the scheduler's warmBoost models.
     */
    std::size_t warmKeys = 0;

    /** Comparable congestion score: pending work per alive member. */
    double
    score() const
    {
        const double pending = static_cast<double>(queuedJobs) +
                               static_cast<double>(activeItems) +
                               static_cast<double>(inflightShards);
        return aliveMembers == 0
                   ? pending + 1e9 // nobody to plan on: avoid
                   : pending / static_cast<double>(aliveMembers);
    }
};

/** Multi-tenant event-driven serving front end (see file comment). */
class ServiceNode
{
  public:
    /**
     * @param devices ensemble members, in index order (the order is
     *        part of the node's identity: shard plans and outcomes
     *        reference member indices)
     * @param options node configuration
     * @param clock serving clock; nullptr means an internal
     *        VirtualClock (the deterministic default). Not owned;
     *        must outlive the node. Engines pass the run's shared
     *        clock here so service time and training time agree.
     */
    ServiceNode(std::vector<Device> devices, ServiceOptions options,
                Clock *clock = nullptr);

    ~ServiceNode();

    ServiceNode(const ServiceNode &) = delete;
    ServiceNode &operator=(const ServiceNode &) = delete;

    /**
     * Register a serveable workload: the observable is grouped into
     * measurement circuits once and transpiled for every member that
     * can run it. Submissions reference the returned id.
     */
    WorkloadId registerWorkload(const QuantumCircuit &ansatz,
                                const PauliSum &observable);

    /**
     * Admission-controlled submission. An admitted job schedules an
     * intake event on the loop (fired by the next drain()/run);
     * rejected jobs get a Ticket whose status names the reason and —
     * for capacity rejections — a retryAfterS backpressure hint
     * derived from the ensemble's queue-model wait estimates at the
     * current backlog.
     */
    Ticket submit(const JobRequest &request);

    /**
     * Serve every queued job to completion: run the event loop until
     * idle, then return the outcomes in ascending job-id order.
     * @param pool fan-out pool for shard execution; nullptr means
     *        TaskPool::shared() (sized by EQC_THREADS)
     */
    std::vector<JobOutcome> drain(TaskPool *pool = nullptr);

    /**
     * Streaming drive: run the loop until model time reaches
     * @p limitH (events beyond it stay queued) and return the
     * outcomes completed so far. submit() between runUntil calls
     * joins open work items mid-flight (rider joins); deadline and
     * membership events fire on schedule. drain() remains the batch
     * "run to idle" entry point.
     */
    std::vector<JobOutcome> runUntil(double limitH,
                                     TaskPool *pool = nullptr);

    /**
     * Ask a running loop (drain/runUntil) to return before its next
     * event. Safe from event handlers and other threads.
     */
    void stop();

    // -- Threaded serving (lock-free MPMC intake) -------------------
    //
    // A Router drives N nodes concurrently by giving each node its own
    // serve thread: submissions from any thread land in a lock-free
    // MPMC ring (postSubmit) and are drained into the normal submit()
    // path *on the node's own thread* — admission, journaling and
    // event scheduling never race. The serve thread idles in "parked"
    // mode (admissions only; the event loop does not run), so a
    // barrier drain — park, submit everything, then requestDrain/
    // awaitDrain on every node — is bit-identical to the inline
    // sequence of submit() calls plus drain(): the per-node stimulus
    // order is the same, and nodes are independent. Journal sinks are
    // for the inline/single-thread mode only (JournalSink::record is
    // not synchronized across nodes).

    /**
     * Spawn the node's serve thread (parked: it drains the intake
     * ring but does not run the event loop until requestDrain).
     * @param pool shard fan-out pool the serve thread drains with;
     *        nullptr means TaskPool::shared(). Note shared() inlines
     *        concurrent parallel-for calls, so N nodes draining at
     *        once each want their own TaskPool (a Router hands every
     *        node a TaskPool(1): shards run inline on the serve
     *        thread and scaling comes from node concurrency).
     */
    void startServe(TaskPool *pool = nullptr);

    /** A serve thread is running (postSubmit will hand off to it). */
    bool
    serving() const
    {
        return serveActive_.load(std::memory_order_acquire);
    }

    /**
     * Thread-safe submission: push the request through the MPMC
     * intake ring and wait for the serve thread to admit/reject it.
     * Falls back to a plain inline submit() when no serve thread is
     * running. The returned Ticket is exactly what submit() would
     * have produced at the same per-node submission order.
     */
    Ticket postSubmit(const JobRequest &request);

    /**
     * Ask the serve thread to run the loop: to idle when @p limitH is
     * +infinity (drain), else until model time reaches @p limitH
     * (runUntil). Returns immediately; pair with awaitDrain().
     */
    void requestDrain(double limitH);

    /** Block until the requested drain finished (the barrier). */
    void awaitDrain();

    /**
     * Outcomes completed since the last collection, ascending job id.
     * Call after awaitDrain() (or while no serve thread runs).
     */
    std::vector<JobOutcome> collectCompleted();

    /** Park permanently and join the serve thread (idempotent). */
    void stopServe();

    /**
     * Placement-relevant load right now: queue depth, in-flight
     * shards, alive member count and warm plan-cache keys. See
     * NodeLoad. Not synchronized with a running drain — callers
     * sample it between barriers.
     */
    NodeLoad loadSnapshot() const;

    /**
     * Kill member @p member at serving hour @p atH: shards in flight
     * at that hour never return (their work requeues to survivors),
     * and no new shard is planned on it from @p atH on. When
     * supervision is enabled (ServiceOptions::superviseBaseBackoffH),
     * an automatic restore is scheduled with exponential backoff.
     */
    void failMemberAt(std::size_t member, double atH);

    /**
     * Bring a failed member back (e.g. after maintenance). Resets the
     * supervision backoff — a manual restore means someone fixed it.
     */
    void restoreMember(std::size_t member);

    /**
     * Join a new ensemble member live at hour @p atH: every
     * registered workload is compiled for it, it enters planning from
     * @p atH with a cold-start weight ramp
     * (ShotSchedulerOptions::coldStartPenalty/coldStartH), and parked
     * work items get a retry wake-up.
     * @return the new member's index
     */
    std::size_t addMember(Device device, double atH);

    /**
     * Retire member @p member at hour @p atH, gracefully: shards
     * already in flight complete, but no new shard is planned on it
     * from @p atH on (survivors re-weight exactly as after a failure).
     */
    void removeMember(std::size_t member, double atH);

    /**
     * Attach a journal sink observing every lifecycle event (admit,
     * rejection, coalesce, cache hit, dispatch, shard resolution,
     * replan, member health, drain, finalize) — the record/replay
     * hook of src/replay/. nullptr detaches. Zero-cost when unset
     * (one pointer test per event); not owned, must outlive the node.
     * Records are published from the submitting/loop thread only.
     */
    void setJournalSink(replay::JournalSink *sink) { sink_ = sink; }

    replay::JournalSink *journalSink() const { return sink_; }

    std::size_t numMembers() const;

    /** Members that have not failed as of hour @p atH. */
    std::size_t aliveMembers(double atH) const;

    const Device &memberDevice(std::size_t member) const;

    /** Eq. 2 score of a member for a workload at hour @p atH. */
    double memberPCorrect(std::size_t member, WorkloadId workload,
                          double atH) const;

    /** Jobs admitted but not yet taken into a work item. */
    std::size_t pendingJobs() const { return queue_.size(); }

    /** Per-job service latency percentiles (serving-clock hours). */
    const stats::Percentiles &latencyStats() const { return latency_; }

    /** Running latency moments (mean/min/max, serving-clock hours). */
    const RunningStats &latencyMoments() const
    {
        return latencyMoments_;
    }

    /** Distribution of retry-after hints handed to rejected jobs. */
    const stats::Percentiles &retryAfterStats() const
    {
        return retryAfter_;
    }

    /** Shots executed per member (cache-aware placement telemetry). */
    const std::vector<uint64_t> &memberShotCounts() const
    {
        return memberShots_;
    }

    /**
     * Shards planned onto @p member whose completion/timeout event
     * has not fired yet — the live backlog the queue model prices.
     * Decays at shard resolution, so it is 0 whenever the loop is
     * idle (e.g. after any drain()).
     */
    int memberQueueDepth(std::size_t member) const;

    /**
     * Lifecycle counters, assembled as thin reads off the node's
     * metrics registry (the registry's counters are the single source
     * of truth; this accessor keeps the legacy struct API).
     */
    ServiceCounters counters() const;

    /**
     * The node's metrics registry: every lifecycle counter above plus
     * latency/queue-wait/retry-after histograms and live load gauges,
     * ready for obs::toPrometheus / obs::toJson exposition.
     */
    obs::MetricsRegistry &metrics() { return metrics_; }
    const obs::MetricsRegistry &metrics() const { return metrics_; }

    const ServiceOptions &options() const { return options_; }

    /** The serving clock (the one passed in, or the internal one). */
    const Clock &clock() const { return *clock_; }

    /** The node's event loop (advanced drive: runUntil, inspection). */
    EventLoop &loop() { return loop_; }

  private:
    struct Member;
    struct Workload;
    struct Shard;
    struct WorkItem;

    /** One shard of one item, addressed into a batch fan-out. */
    struct ShardRef
    {
        WorkItem *item;
        std::size_t shard;
    };

    /** Compile workload @p w for member @p member (if it can run it). */
    void compileWorkloadForMember(Workload &w, std::size_t member);

    /** Cold-start weight factor of @p member at @p atH (1 = warm). */
    double coldFactor(const Member &m, double atH) const;

    /** Shared body of restoreMember and the supervision path. */
    void restoreMemberInternal(std::size_t member, bool supervised);

    /** Scheduler views of the members eligible for @p w at @p atH. */
    std::vector<MemberView> memberViews(const Workload &w, double atH,
                                        int shotsPerMember) const;

    /** Mean Eq. 2 score of @p member's group circuits for @p w. */
    double workloadPCorrect(const Workload &w, std::size_t member,
                            double atH) const;

    /** Backpressure hint for a rejection observed at depth @p depth. */
    double retryAfterHintS(double atH, std::size_t depth) const;

    /** Publish an Admit/Reject record for @p request (sink_ set). */
    void journalSubmit(const JobRequest &request, const Ticket &ticket,
                       double atH);

    /** Intake event: pop + coalesce + plan + launch everything queued. */
    void intake();

    /** Plan @p shots for @p item at @p atH; false when nobody can. */
    bool planShards(WorkItem &item, int shots, double atH);

    /** Fan a batch of shard computations (any items) through the pool. */
    void executeShards(const std::vector<ShardRef> &batch);

    /**
     * batchedSweep variant of executeShards: groups the batch by work
     * item and advances each item's alive shards together through one
     * estimateEnsemble sweep, falling back to per-shard estimates when
     * fewer than two shards survive the liveness check.
     */
    void executeShardsBatched(const std::vector<ShardRef> &batch,
                              TaskPool &exec);

    /** Schedule completion/timeout events for shards >= firstShard. */
    void scheduleShardEvents(WorkItem &item, std::size_t firstShard);

    /** Decay @p member's planned-shard depth as a shard resolves. */
    void resolveMemberDepth(int member);

    /** One shard resolved; finalize or requeue when it was the last. */
    void onShardResolved(WorkItem &item);

    /** Replan an item's failed shots onto survivors (or give up). */
    void requeueFailures(WorkItem &item);

    /** Publish a Replan record for a requeue round (no-op unsunk). */
    void journalReplan(const WorkItem &item, int failedShots,
                       int planned, bool exhausted, double atH);

    /** Aggregate in shard-seq order and complete every rider. */
    void finalizeItem(WorkItem &item);

    /** A job's deadline event fired: shed its work item (or no-op). */
    void onDeadline(uint64_t jobId);

    /** Shed @p item at its deadline: equi-weighted partial finalize. */
    void shedItem(WorkItem &item, uint64_t trigJobId);

    /** Publish a DeadlineShed record at @p atH (no-op unsunk). */
    void journalDeadlineShed(uint64_t jobId, uint64_t uid,
                             int completedShots, int shedShots,
                             double deadlineH, double atH);

    /** Park an unplannable item and schedule its retry event. */
    void parkItem(WorkItem *item, double atH);

    /** Retry planning a parked item (retry event / join wake-up). */
    void retryParked(WorkItem *item);

    /** Wake every parked item (a member joined or restored). */
    void retryParkedItems();

    /** Erase finished items, move out and sort completed outcomes. */
    std::vector<JobOutcome> collectOutcomes();

    /** Serve-thread body: pump intake, run drains on command. */
    void serveLoop();

    /** Drain the MPMC intake ring into submit() (serve thread only). */
    bool pumpIntake();

    /**
     * Registry-backed lifecycle counters. The references alias
     * counters registered in metrics_, so `++counters_.x` increments
     * the registry directly and ServiceCounters is assembled on read.
     */
    struct NodeCounters
    {
        obs::Counter &jobsAdmitted;
        obs::Counter &jobsRejected;
        obs::Counter &rejectedQueueFull;
        obs::Counter &rejectedTenantQuota;
        obs::Counter &rejectedBadRequest;
        obs::Counter &rejectedDeadline;
        obs::Counter &jobsCoalesced;
        obs::Counter &cacheHits;
        obs::Counter &workItems;
        obs::Counter &shardsExecuted;
        obs::Counter &shardsRequeued;
        obs::Counter &shotsExecuted;
        obs::Counter &circuitsExecuted;
        obs::Counter &deadlinesMet;
        obs::Counter &deadlineSheds;
        obs::Counter &shotsShed;
        obs::Counter &ridersJoined;
        obs::Counter &memberJoins;
        obs::Counter &memberLeaves;
        obs::Counter &supervisedRestores;
    };

    /** Non-counter instruments (histograms, live load gauges). */
    struct NodeInstruments
    {
        obs::Histogram *latencyH = nullptr;
        obs::Histogram *queueWaitH = nullptr;
        obs::Histogram *retryAfterS = nullptr;
        obs::Histogram *batchMembers = nullptr;
        obs::Gauge *queueDepth = nullptr;
        obs::Gauge *activeItems = nullptr;
        obs::Gauge *inflightShards = nullptr;
        obs::Gauge *aliveMembers = nullptr;
    };

    static NodeCounters makeCounters(obs::MetricsRegistry &m);
    static NodeInstruments makeInstruments(obs::MetricsRegistry &m);

    ServiceOptions options_;
    VirtualClock ownClock_;
    Clock *clock_;
    EventLoop loop_;
    std::vector<Member> members_;
    std::vector<std::unique_ptr<Workload>> workloads_;
    JobQueue queue_;
    ShotScheduler scheduler_;
    ResultCache cache_;
    Rng rootRng_;
    uint64_t nextJobId_ = 1;
    uint64_t nextWorkId_ = 1;
    stats::Percentiles latency_;
    RunningStats latencyMoments_;
    stats::Percentiles retryAfter_;
    std::vector<uint64_t> memberShots_;
    /** Declared before counters_/ins_: they hold handles into it. */
    obs::MetricsRegistry metrics_;
    NodeCounters counters_;
    NodeInstruments ins_;

    /** Work items in flight on the loop (stable addresses). */
    std::vector<std::unique_ptr<WorkItem>> active_;
    /**
     * Open (executing or parked, not finished, not cache-served) work
     * items by key: late submissions with the same (workload, binding)
     * join these as riders instead of opening duplicates — the
     * streaming extension of intake-batch coalescing. Entries are
     * replaced when a newer item opens on the same key and erased at
     * finalize.
     */
    std::unordered_map<WorkKey, WorkItem *, WorkKeyHash> open_;
    /** Item every admitted-and-popped job currently rides. */
    std::unordered_map<uint64_t, WorkItem *> riderItem_;
    /** Pending deadline event id per job (cancelled at finalize). */
    std::unordered_map<uint64_t, uint64_t> deadlineEvents_;
    /** Outcomes completed since the last drain() collected them. */
    std::vector<JobOutcome> completed_;
    /** Shard fan-out pool while the loop runs (drain argument). */
    TaskPool *exec_ = nullptr;
    /** Lifecycle observer (replay journal); nullptr = off. */
    replay::JournalSink *sink_ = nullptr;

    // -- Threaded serving state -------------------------------------

    /** One in-flight postSubmit handshake (lives on caller's stack). */
    struct SubmitSlot
    {
        const JobRequest *request = nullptr;
        Ticket ticket;
        std::atomic<bool> done{false};
    };

    enum ServeCmd : int { kServeIdle = 0, kServeDrain = 1,
                          kServeStop = 2 };

    /** Lock-free intake ring the serve thread drains. */
    MpmcQueue<SubmitSlot *> intake_{1024};
    std::thread serveThread_;
    std::atomic<bool> serveActive_{false};
    std::atomic<int> serveCmd_{kServeIdle};
    /** runUntil horizon of a requested drain (written pre-command). */
    double serveLimitH_ = 0.0;
    /** Fan-out pool of the serve thread (startServe argument). */
    TaskPool *servePool_ = nullptr;
};

} // namespace serve
} // namespace eqc

#endif // EQC_SERVE_SERVICE_NODE_H
