/**
 * @file
 * ServiceNode — the multi-tenant front end of the EQC runtime.
 *
 * One node fronts one ensemble of QPUs and serves expectation-
 * estimation jobs from many tenants. The lifecycle of a job is
 *
 *   submit  -> admission control (JobQueue)
 *   drain   -> coalesce identical (workload, binding) work items
 *           -> shard each item's shot budget across members
 *              (ShotScheduler over queue-model wait estimates and
 *              Eq. 2 calibration scores)
 *           -> execute shards through a TaskPool (per-shard forked
 *              RNG streams: results are bit-identical for any thread
 *              count)
 *           -> aggregate shard estimates (Aggregator, pluggable
 *              weighting), requeueing shards of members that dropped
 *              mid-job onto survivors with weights renormalized
 *           -> complete every rider, record latency percentiles
 *
 * The node lives on the same virtual clock as the rest of the
 * framework: requests carry a submission hour, shard latencies are
 * sampled from each device's queue model, and a job's completion is
 * the latest surviving shard's completion. Draining is synchronous
 * and deterministic — identical submission sequences produce
 * identical outcomes, bit for bit, regardless of EQC_THREADS.
 */

#ifndef EQC_SERVE_SERVICE_NODE_H
#define EQC_SERVE_SERVICE_NODE_H

#include <memory>
#include <vector>

#include "common/stats.h"
#include "core/weighting.h"
#include "device/backend.h"
#include "serve/aggregator.h"
#include "serve/coalescer.h"
#include "serve/job_queue.h"
#include "serve/shot_scheduler.h"
#include "vqa/expectation.h"

namespace eqc {

class TaskPool;

namespace serve {

/** Full configuration of one ServiceNode. */
struct ServiceOptions
{
    AdmissionPolicy admission;
    ShotSchedulerOptions scheduler;
    AggregationMode aggregation = AggregationMode::FidelityWeighted;
    ShotMode shotMode = ShotMode::Gaussian;
    PCorrectMode pCorrectMode = PCorrectMode::Physical;
    /** Reported-calibration readout-error mitigation. */
    bool readoutMitigation = true;
    /**
     * Rounds of shard requeueing after member failures before a work
     * item completes with whatever survived.
     */
    int maxRequeueRounds = 4;
    /** Result-cache TTL in virtual hours (0 disables reuse). */
    double resultCacheTtlH = 0.0;
    std::size_t resultCacheCapacity = 256;
    /** Reservoir size of the latency percentile estimator. */
    std::size_t latencyReservoir = 4096;
    /** Root seed; every stochastic stream forks from it by label. */
    uint64_t seed = 1;
};

/** Multi-tenant serving front end (see file comment). */
class ServiceNode
{
  public:
    /**
     * @param devices ensemble members, in index order (the order is
     *        part of the node's identity: shard plans and outcomes
     *        reference member indices)
     * @param options node configuration
     */
    ServiceNode(std::vector<Device> devices, ServiceOptions options);

    ~ServiceNode();

    ServiceNode(const ServiceNode &) = delete;
    ServiceNode &operator=(const ServiceNode &) = delete;

    /**
     * Register a serveable workload: the observable is grouped into
     * measurement circuits once and transpiled for every member that
     * can run it. Submissions reference the returned id.
     */
    WorkloadId registerWorkload(const QuantumCircuit &ansatz,
                                const PauliSum &observable);

    /**
     * Admission-controlled submission. Jobs queue until drain();
     * rejected jobs get a Ticket whose status names the reason.
     */
    Ticket submit(const JobRequest &request);

    /**
     * Serve every queued job to completion: coalesce, shard, execute,
     * aggregate, requeue around failures. Outcomes are returned in
     * ascending job-id order.
     * @param pool fan-out pool for shard execution; nullptr means
     *        TaskPool::shared() (sized by EQC_THREADS)
     */
    std::vector<JobOutcome> drain(TaskPool *pool = nullptr);

    /**
     * Kill member @p member at virtual hour @p atH: shards in flight
     * at that hour never return (their work requeues to survivors),
     * and no new shard is planned on it from @p atH on.
     */
    void failMemberAt(std::size_t member, double atH);

    /** Bring a failed member back (e.g. after maintenance). */
    void restoreMember(std::size_t member);

    std::size_t numMembers() const;

    /** Members that have not failed as of hour @p atH. */
    std::size_t aliveMembers(double atH) const;

    const Device &memberDevice(std::size_t member) const;

    /** Eq. 2 score of a member for a workload at hour @p atH. */
    double memberPCorrect(std::size_t member, WorkloadId workload,
                          double atH) const;

    /** Jobs admitted but not yet drained. */
    std::size_t pendingJobs() const { return queue_.size(); }

    /** Per-job service latency percentiles (virtual hours). */
    const stats::Percentiles &latencyStats() const { return latency_; }

    /** Running latency moments (mean/min/max, virtual hours). */
    const RunningStats &latencyMoments() const
    {
        return latencyMoments_;
    }

    const ServiceCounters &counters() const { return counters_; }

    const ServiceOptions &options() const { return options_; }

  private:
    struct Member;
    struct Workload;
    struct Shard;
    struct WorkItem;

    /** Scheduler views of the members eligible for @p w at @p atH. */
    std::vector<MemberView> memberViews(const Workload &w, double atH,
                                        int shotsPerMember) const;

    /** Mean Eq. 2 score of @p member's group circuits for @p w. */
    double workloadPCorrect(const Workload &w, std::size_t member,
                            double atH) const;

    ServiceOptions options_;
    std::vector<Member> members_;
    std::vector<std::unique_ptr<Workload>> workloads_;
    JobQueue queue_;
    ShotScheduler scheduler_;
    ResultCache cache_;
    Rng rootRng_;
    uint64_t nextJobId_ = 1;
    uint64_t nextWorkId_ = 1;
    stats::Percentiles latency_;
    RunningStats latencyMoments_;
    ServiceCounters counters_;
};

} // namespace serve
} // namespace eqc

#endif // EQC_SERVE_SERVICE_NODE_H
