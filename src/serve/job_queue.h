/**
 * @file
 * Admission-controlled priority queue of tenant jobs.
 *
 * Admission control protects the ensemble from overload (total queue
 * depth) and from one tenant starving the rest (per-tenant quota).
 * Ordering is a strict weak order — priority desc, submit time asc,
 * job id asc — so the pop sequence is deterministic for any insertion
 * interleaving of distinct jobs.
 *
 * Capacity rejections are *backpressure signals*, not dead ends: the
 * ServiceNode turns each one into a retry-after hint derived from the
 * ensemble's queue-model wait estimates at the depth observed here
 * (Ticket::retryAfterS, monotone in the backlog), so well-behaved
 * tenants spread their resubmissions instead of hammering the door.
 */

#ifndef EQC_SERVE_JOB_QUEUE_H
#define EQC_SERVE_JOB_QUEUE_H

#include <cstddef>
#include <map>
#include <vector>

#include "serve/service.h"

namespace eqc {
namespace serve {

/** Knobs of the admission controller. */
struct AdmissionPolicy
{
    /** Jobs the queue holds before rejecting outright. */
    std::size_t maxQueueDepth = 1024;
    /** Queued (not yet drained) jobs one tenant may hold. */
    int maxQueuedPerTenant = 64;
    /** Largest admissible per-job shot budget. */
    int maxShotsPerJob = 1 << 20;
};

/** Priority queue with admission control (see file comment). */
class JobQueue
{
  public:
    explicit JobQueue(AdmissionPolicy policy) : policy_(policy) {}

    /** One admitted entry. */
    struct Entry
    {
        JobRequest request;
        uint64_t jobId = 0;
    };

    /**
     * Admit @p request under @p jobId, or reject it. Shot-budget
     * validation lives here; workload validation is the ServiceNode's
     * (it owns the registry).
     */
    AdmitStatus admit(const JobRequest &request, uint64_t jobId);

    /** Highest-priority entry; queue must be non-empty. */
    Entry pop();

    /**
     * Remove a queued job by id (deadline sheds pull victims out of
     * line). O(n) scan + re-heapify — rare path, small queues.
     * @param removed receives the entry when found (may be null)
     * @return true when the job was queued and is now removed
     */
    bool erase(uint64_t jobId, Entry *removed = nullptr);

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

    /** Currently queued jobs of @p tenantId. */
    int queuedFor(int tenantId) const;

    const AdmissionPolicy &policy() const { return policy_; }

  private:
    AdmissionPolicy policy_;
    /** Max-heap on the (priority, -submitH, -jobId) order. */
    std::vector<Entry> entries_;
    std::map<int, int> queuedPerTenant_;
};

} // namespace serve
} // namespace eqc

#endif // EQC_SERVE_JOB_QUEUE_H
