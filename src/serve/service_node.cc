#include "serve/service_node.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/logging.h"
#include "common/task_pool.h"
#include "device/calibration.h"
#include "replay/journal.h"

namespace eqc {
namespace serve {

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

/** One ensemble member: device, backend, failure clock, plan depth. */
struct ServiceNode::Member
{
    Device device;
    std::unique_ptr<SimulatedQpu> backend;
    /** Hour the member dies (infinity = healthy). */
    double failAtH = std::numeric_limits<double>::infinity();
    /**
     * Shards planned onto the member whose completion/timeout event
     * has not fired yet (queue pressure). Incremented at planning,
     * decremented as each shard resolves, so requeue rounds and
     * retry-after estimates price the *live* backlog rather than the
     * pressure of the last intake alone.
     */
    int depth = 0;

    bool aliveAt(double atH) const { return atH < failAtH; }
};

/** One registered workload: estimator + per-member compilation. */
struct ServiceNode::Workload
{
    ExpectationEstimator estimator;
    int numParams = 0;
    int numQubits = 0;
    /** Per member: transpiled group circuits (empty = ineligible). */
    std::vector<std::vector<TranspiledCircuit>> compiled;
    /** Per member: duration of one group circuit (microseconds). */
    std::vector<double> durUs;
    /** Per member: Eq. 2 census of each group circuit. */
    std::vector<std::vector<CircuitQuality>> quality;

    Workload(const PauliSum &observable, const QuantumCircuit &ansatz)
        : estimator(observable, ansatz),
          numParams(ansatz.numParams()),
          numQubits(ansatz.numQubits())
    {
    }
};

/** One planned shard execution. */
struct ServiceNode::Shard
{
    int member = -1;
    int shots = 0;
    double startH = 0.0;
    /** Eq. 2 score at planning time (travels into the aggregate). */
    double pCorrect = 0.0;
    /** Member queue depth when planned (latency scaling). */
    int depthAtPlan = 0;
    /** Per-work-item shard sequence (RNG fork label). */
    int seq = 0;
    /**
     * Hour the failure surfaces when the member dies mid-shard (the
     * caller times out at the shard's expected completion).
     */
    double detectH = 0.0;
    ShardResult result;
};

/**
 * One coalesced unit of work and its riders. Lives on the event loop:
 * shards resolve one completion/timeout event at a time, and the item
 * finalizes when its last outstanding shard has resolved.
 */
struct ServiceNode::WorkItem
{
    WorkKey key;
    uint64_t workUid = 0;
    /** Earliest rider submission: when execution can start. */
    double t0 = 0.0;
    /** Latest rider submission: cache freshness is judged here, so a
     *  hit is within TTL for *every* rider, not just the earliest. */
    double tLast = 0.0;
    /** Largest rider budget: what actually executes. */
    int shots = 0;
    /** Riders in pop (priority) order. */
    std::vector<JobQueue::Entry> riders;
    /** Every shard ever planned for the item, in sequence order. */
    std::vector<Shard> shards;
    /** Next RNG fork label for this item's shards. */
    int shardSeq = 0;
    /** Shards whose completion/timeout event has not fired yet. */
    std::size_t outstanding = 0;
    int requeues = 0;
    /** Requeue plans already made for this item. */
    int requeueRound = 0;
    /** Failed shots accumulated since the last (re)queue round. */
    int pendingFailedShots = 0;
    /** Latest failure-detection hour of the pending failures. */
    double pendingDetectH = 0.0;
    bool fromCache = false;
    bool finished = false;
    CachedResult cached;
    Aggregator agg;

    explicit WorkItem(AggregationMode mode) : agg(mode) {}
};

// ---------------------------------------------------------------------------
// Construction / registration
// ---------------------------------------------------------------------------

ServiceNode::ServiceNode(std::vector<Device> devices,
                         ServiceOptions options, Clock *clock)
    : options_(options), clock_(clock ? clock : &ownClock_),
      loop_(*clock_), queue_(options.admission),
      scheduler_(options.scheduler),
      cache_(clock_, options.resultCacheTtlH,
             options.resultCacheCapacity),
      rootRng_(Rng(options.seed).fork("serve")),
      latency_(options.latencyReservoir, options.seed),
      retryAfter_(options.latencyReservoir, options.seed + 1)
{
    if (devices.empty())
        fatal("ServiceNode: empty device list");
    members_.reserve(devices.size());
    for (Device &dev : devices) {
        Member m;
        m.backend = std::make_unique<SimulatedQpu>(dev, options_.seed);
        m.device = std::move(dev);
        members_.push_back(std::move(m));
    }
    memberShots_.assign(members_.size(), 0);
}

ServiceNode::~ServiceNode() = default;

WorkloadId
ServiceNode::registerWorkload(const QuantumCircuit &ansatz,
                              const PauliSum &observable)
{
    auto w = std::make_unique<Workload>(observable, ansatz);
    w->compiled.resize(members_.size());
    w->durUs.resize(members_.size(), 0.0);
    w->quality.resize(members_.size());
    std::size_t eligible = 0;
    for (std::size_t i = 0; i < members_.size(); ++i) {
        const Member &m = members_[i];
        if (!m.device.canRun(w->numQubits))
            continue;
        w->compiled[i] = w->estimator.compileFor(m.device.coupling);
        w->durUs[i] = circuitDurationUs(w->compiled[i][0].compact,
                                        m.device.baseCalibration,
                                        w->compiled[i][0].compactToPhysical);
        for (const TranspiledCircuit &tc : w->compiled[i])
            w->quality[i].push_back(circuitQuality(tc));
        ++eligible;
    }
    if (eligible == 0)
        fatal("ServiceNode: no member can run a " +
              std::to_string(w->numQubits) + "-qubit workload");
    workloads_.push_back(std::move(w));
    return static_cast<WorkloadId>(workloads_.size() - 1);
}

// ---------------------------------------------------------------------------
// Submission (admission + backpressure)
// ---------------------------------------------------------------------------

double
ServiceNode::retryAfterHintS(double atH, std::size_t depth) const
{
    // Spread the node-wide backlog across the live ensemble and quote
    // the cheapest member's expected wait at that per-member pressure.
    // Strictly increasing in @p depth: the fractional per-member depth
    // grows with every queued job and every member's expectedWaitS is
    // strictly increasing in it.
    std::size_t alive = 0;
    for (const Member &m : members_)
        if (m.aliveAt(atH))
            ++alive;
    const bool anyAlive = alive > 0;
    const double perMember =
        static_cast<double>(depth) /
        static_cast<double>(anyAlive ? alive : members_.size());
    double best = std::numeric_limits<double>::infinity();
    for (const Member &m : members_) {
        if (anyAlive && !m.aliveAt(atH))
            continue;
        best = std::min(best,
                        m.backend->queue().expectedWaitS(atH, perMember));
    }
    return best;
}

void
ServiceNode::journalSubmit(const JobRequest &request, const Ticket &t,
                           double atH)
{
    replay::EventRecord r;
    r.kind = t.admitted() ? replay::EventKind::Admit
                          : replay::EventKind::Reject;
    r.tH = atH;
    r.jobId = t.jobId;
    r.tenant = request.tenantId;
    r.workload = request.workload;
    r.shots = request.shots;
    r.priority = request.priority;
    r.submitH = request.submitH;
    r.status = static_cast<int>(t.status);
    r.depth = static_cast<int>(queue_.size());
    r.retryAfterS = t.retryAfterS;
    r.params = request.params;
    sink_->record(r);
}

Ticket
ServiceNode::submit(const JobRequest &request)
{
    Ticket t;
    const double atH = std::max(loop_.now(), request.submitH);
    const bool knownWorkload =
        request.workload >= 0 &&
        request.workload < static_cast<WorkloadId>(workloads_.size());
    if (!knownWorkload ||
        static_cast<int>(request.params.size()) !=
            workloads_[request.workload]->numParams) {
        t.status = AdmitStatus::RejectedBadRequest;
        ++counters_.jobsRejected;
        ++counters_.rejectedBadRequest;
        if (sink_)
            journalSubmit(request, t, atH);
        return t;
    }
    t.status = queue_.admit(request, nextJobId_);
    if (t.admitted()) {
        t.jobId = nextJobId_++;
        ++counters_.jobsAdmitted;
        // The job's intake is an event: the first intake to fire pops
        // and coalesces everything queued by then, later ones find an
        // empty queue and no-op. Under drain() every submission lands
        // before the loop runs, which preserves the batch-coalescing
        // semantics of the synchronous drain bit for bit.
        loop_.scheduleAt(atH, [this] { intake(); });
    } else {
        ++counters_.jobsRejected;
        if (t.status == AdmitStatus::RejectedBadRequest) {
            ++counters_.rejectedBadRequest;
        } else {
            if (t.status == AdmitStatus::RejectedQueueFull)
                ++counters_.rejectedQueueFull;
            else
                ++counters_.rejectedTenantQuota;
            t.retryAfterS = retryAfterHintS(atH, queue_.size());
            retryAfter_.add(t.retryAfterS);
        }
    }
    if (sink_)
        journalSubmit(request, t, atH);
    return t;
}

// ---------------------------------------------------------------------------
// Member health
// ---------------------------------------------------------------------------

void
ServiceNode::failMemberAt(std::size_t member, double atH)
{
    members_.at(member).failAtH = atH;
    if (sink_) {
        replay::EventRecord r;
        r.kind = replay::EventKind::MemberFail;
        r.tH = loop_.now();
        r.member = static_cast<int>(member);
        r.atH = atH;
        sink_->record(r);
    }
}

void
ServiceNode::restoreMember(std::size_t member)
{
    members_.at(member).failAtH =
        std::numeric_limits<double>::infinity();
    if (sink_) {
        replay::EventRecord r;
        r.kind = replay::EventKind::MemberRestore;
        r.tH = loop_.now();
        r.member = static_cast<int>(member);
        sink_->record(r);
    }
}

std::size_t
ServiceNode::numMembers() const
{
    return members_.size();
}

std::size_t
ServiceNode::aliveMembers(double atH) const
{
    std::size_t n = 0;
    for (const Member &m : members_)
        if (m.aliveAt(atH))
            ++n;
    return n;
}

const Device &
ServiceNode::memberDevice(std::size_t member) const
{
    return members_.at(member).device;
}

int
ServiceNode::memberQueueDepth(std::size_t member) const
{
    return members_.at(member).depth;
}

double
ServiceNode::workloadPCorrect(const Workload &w, std::size_t member,
                              double atH) const
{
    if (w.quality[member].empty())
        return 0.0;
    CalibrationSnapshot reported =
        members_[member].backend->reportedCalibration(atH);
    double sum = 0.0;
    for (const CircuitQuality &q : w.quality[member])
        sum += pCorrect(q, reported, options_.pCorrectMode);
    return sum / static_cast<double>(w.quality[member].size());
}

double
ServiceNode::memberPCorrect(std::size_t member, WorkloadId workload,
                            double atH) const
{
    (void)members_.at(member); // public entry: bounds-check the index
    return workloadPCorrect(*workloads_.at(workload), member, atH);
}

// ---------------------------------------------------------------------------
// Shard planning
// ---------------------------------------------------------------------------

std::vector<MemberView>
ServiceNode::memberViews(const Workload &w, double atH,
                         int shotsPerMember) const
{
    std::vector<MemberView> views;
    views.reserve(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i) {
        const Member &m = members_[i];
        MemberView v;
        v.member = static_cast<int>(i);
        v.available = m.aliveAt(atH) && !w.compiled[i].empty();
        if (v.available) {
            v.pCorrect = workloadPCorrect(w, i, atH);
            v.expectedLatencyS = m.backend->queue().expectedLatencyS(
                atH, w.durUs[i], shotsPerMember,
                static_cast<int>(w.compiled[i].size()), m.depth);
            v.planWarm =
                m.backend->planCacheContains(w.compiled[i][0]);
        }
        views.push_back(v);
    }
    return views;
}

bool
ServiceNode::planShards(WorkItem &item, int shots, double atH)
{
    const Workload &w = *workloads_[item.key.workload];
    const int guess =
        shots /
        std::max<int>(1, static_cast<int>(aliveMembers(atH)));
    std::vector<MemberView> views = memberViews(w, atH, guess);
    std::vector<ShardPlan> plan = scheduler_.plan(views, shots);
    for (const ShardPlan &p : plan) {
        Shard s;
        s.member = p.member;
        s.shots = p.shots;
        s.startH = atH;
        s.pCorrect = views[static_cast<std::size_t>(p.member)].pCorrect;
        s.depthAtPlan = members_[static_cast<std::size_t>(p.member)].depth;
        s.seq = item.shardSeq++;
        ++members_[static_cast<std::size_t>(p.member)].depth;
        if (sink_) {
            replay::EventRecord r;
            r.kind = replay::EventKind::Dispatch;
            r.tH = atH;
            r.workUid = item.workUid;
            r.member = s.member;
            r.shots = s.shots;
            r.seq = s.seq;
            r.pCorrect = s.pCorrect;
            r.depth = s.depthAtPlan;
            sink_->record(r);
        }
        item.shards.push_back(s);
    }
    item.outstanding += plan.size();
    return !plan.empty();
}

// ---------------------------------------------------------------------------
// Intake event: coalesce, probe the cache, plan, launch
// ---------------------------------------------------------------------------

void
ServiceNode::intake()
{
    if (queue_.empty())
        return; // an earlier intake event already took everything

    // Member depths are NOT reset here: they decay as shards resolve,
    // so the estimates price this batch's pressure on top of whatever
    // is still in flight from earlier intakes.

    // Pop everything in priority order, coalescing identical
    // (workload, binding) requests into work items.
    std::vector<WorkItem *> fresh;
    std::unordered_map<WorkKey, WorkItem *, WorkKeyHash> open;
    while (!queue_.empty()) {
        JobQueue::Entry e = queue_.pop();
        WorkKey key{e.request.workload, e.request.params};
        auto it = open.find(key);
        if (it == open.end()) {
            auto owned = std::make_unique<WorkItem>(options_.aggregation);
            WorkItem *item = owned.get();
            item->key = std::move(key);
            item->workUid = nextWorkId_++;
            item->t0 = e.request.submitH;
            item->tLast = e.request.submitH;
            item->shots = e.request.shots;
            item->riders.push_back(std::move(e));
            fresh.push_back(item);
            open.emplace(item->key, item);
            active_.push_back(std::move(owned));
        } else {
            WorkItem *item = it->second;
            item->t0 = std::min(item->t0, e.request.submitH);
            item->tLast = std::max(item->tLast, e.request.submitH);
            item->shots = std::max(item->shots, e.request.shots);
            if (sink_) {
                replay::EventRecord r;
                r.kind = replay::EventKind::Coalesce;
                r.tH = loop_.now();
                r.jobId = e.jobId;
                r.workUid = item->workUid;
                sink_->record(r);
            }
            item->riders.push_back(std::move(e));
            // jobsCoalesced is counted at finalize, once the item
            // knows whether it executed or served from cache — every
            // rider lands in exactly one counter category.
        }
    }

    // Cache lookups and shard planning in pop order. All planning
    // happens before any execution so every item of one intake probes
    // the same plan-cache state (and the batch stays bit-identical to
    // the synchronous drain this event decomposition replaced).
    for (WorkItem *item : fresh) {
        if (const CachedResult *hit =
                cache_.lookup(item->key, item->tLast, item->shots)) {
            item->fromCache = true;
            item->cached = *hit;
            counters_.cacheHits += item->riders.size();
            if (sink_) {
                replay::EventRecord r;
                r.kind = replay::EventKind::CacheHit;
                r.tH = std::max(item->tLast, loop_.now());
                r.workUid = item->workUid;
                r.storedAtH = hit->storedAtH;
                r.servedShots = hit->shots;
                r.shots = item->shots;
                r.energy = hit->energy;
                r.riders = static_cast<int>(item->riders.size());
                sink_->record(r);
            }
            continue;
        }
        ++counters_.workItems;
        planShards(*item, item->shots, item->t0);
    }

    // Launch: cache hits and unserveable items finalize by event
    // (scheduleAt clamps past timestamps to now); every executing
    // item's shards join ONE combined fan-out — batch-wide, like the
    // round the synchronous drain ran — and then resolve one
    // completion event per shard.
    std::vector<ShardRef> batch;
    for (WorkItem *item : fresh) {
        if (item->fromCache) {
            loop_.scheduleAt(item->tLast,
                             [this, item] { finalizeItem(*item); });
        } else if (item->shards.empty()) {
            loop_.scheduleAt(item->t0,
                             [this, item] { finalizeItem(*item); });
        } else {
            for (std::size_t i = 0; i < item->shards.size(); ++i)
                batch.push_back(ShardRef{item, i});
        }
    }
    executeShards(batch);
    for (WorkItem *item : fresh)
        if (!item->fromCache && !item->shards.empty())
            scheduleShardEvents(*item, 0);
}

// ---------------------------------------------------------------------------
// Shard execution and per-shard completion events
// ---------------------------------------------------------------------------

void
ServiceNode::executeShards(const std::vector<ShardRef> &batch)
{
    // One fan-out for the whole batch, possibly spanning many work
    // items: each shard owns an RNG stream forked from (work uid,
    // shard seq) — a pure function of ids — and writes only its own
    // slot, so any parallelJobs chunking yields bit-identical
    // results while the pool stays saturated across items.
    if (batch.empty())
        return;
    TaskPool &exec = exec_ ? *exec_ : TaskPool::shared();
    exec.parallelJobs(batch.size(), [&](uint64_t b, uint64_t e) {
        for (uint64_t bi = b; bi < e; ++bi) {
            WorkItem &item = *batch[bi].item;
            Shard &s = item.shards[batch[bi].shard];
            const Workload &w = *workloads_[item.key.workload];
            Member &m = members_[static_cast<std::size_t>(s.member)];
            Rng rng = rootRng_.fork(item.workUid)
                          .fork(static_cast<uint64_t>(s.seq));
            const int groups =
                static_cast<int>(w.compiled[s.member].size());
            double latS = m.backend->queue().jobLatencyS(
                s.startH, w.durUs[s.member], s.shots, groups, rng,
                s.depthAtPlan);
            double completeH = s.startH + latS / 3600.0;
            s.result.member = s.member;
            s.result.shots = s.shots;
            s.result.pCorrect = s.pCorrect;
            if (!m.aliveAt(completeH)) {
                // The member died between planning and completion:
                // the shard never returns and the caller times out at
                // its expected completion.
                s.result.failed = true;
                s.detectH = std::max(completeH, s.startH);
                continue;
            }
            EnergyEstimate est = w.estimator.estimate(
                *m.backend, w.compiled[s.member], item.key.params,
                s.shots, completeH, rng, options_.shotMode,
                options_.readoutMitigation, &exec);
            s.result.energy = est.energy;
            s.result.variance = est.variance;
            s.result.completeH = completeH;
            s.result.circuitsRun = est.circuitsRun;
            s.result.failed = false;
        }
    });
}

void
ServiceNode::scheduleShardEvents(WorkItem &item, std::size_t firstShard)
{
    for (std::size_t i = firstShard; i < item.shards.size(); ++i) {
        WorkItem *ip = &item;
        const Shard &s = item.shards[i];
        if (s.result.failed) {
            // The failure surfaces when the caller times out at the
            // shard's expected completion.
            loop_.scheduleAt(s.detectH, [this, ip, i] {
                const Shard &sh = ip->shards[i];
                ip->pendingFailedShots += sh.shots;
                ip->pendingDetectH =
                    std::max(ip->pendingDetectH, sh.detectH);
                resolveMemberDepth(sh.member);
                if (sink_) {
                    replay::EventRecord r;
                    r.kind = replay::EventKind::ShardFail;
                    r.tH = loop_.now();
                    r.workUid = ip->workUid;
                    r.member = sh.member;
                    r.shots = sh.shots;
                    r.seq = sh.seq;
                    sink_->record(r);
                }
                onShardResolved(*ip);
            });
        } else {
            // Per-member completion: each shard finishes on its own
            // schedule — there is no round barrier.
            loop_.scheduleAt(s.result.completeH, [this, ip, i] {
                const Shard &sh = ip->shards[i];
                ++counters_.shardsExecuted;
                counters_.shotsExecuted +=
                    static_cast<uint64_t>(sh.shots);
                counters_.circuitsExecuted +=
                    static_cast<uint64_t>(sh.result.circuitsRun);
                memberShots_[static_cast<std::size_t>(sh.member)] +=
                    static_cast<uint64_t>(sh.shots);
                resolveMemberDepth(sh.member);
                if (sink_) {
                    replay::EventRecord r;
                    r.kind = replay::EventKind::ShardDone;
                    r.tH = loop_.now();
                    r.workUid = ip->workUid;
                    r.member = sh.member;
                    r.shots = sh.shots;
                    r.seq = sh.seq;
                    r.energy = sh.result.energy;
                    r.variance = sh.result.variance;
                    r.pCorrect = sh.result.pCorrect;
                    r.circuits = sh.result.circuitsRun;
                    r.doneH = sh.result.completeH;
                    sink_->record(r);
                }
                onShardResolved(*ip);
            });
        }
    }
}

void
ServiceNode::resolveMemberDepth(int member)
{
    // One planned shard resolved: the member's live backlog decays.
    int &depth = members_[static_cast<std::size_t>(member)].depth;
    if (depth > 0)
        --depth;
}

void
ServiceNode::onShardResolved(WorkItem &item)
{
    if (--item.outstanding > 0)
        return;
    if (item.pendingFailedShots > 0)
        requeueFailures(item);
    else
        finalizeItem(item);
}

// ---------------------------------------------------------------------------
// Requeue event: replan lost shots onto survivors
// ---------------------------------------------------------------------------

void
ServiceNode::requeueFailures(WorkItem &item)
{
    if (item.requeueRound >= options_.maxRequeueRounds) {
        warn("ServiceNode: requeue rounds exhausted for work item " +
             std::to_string(item.workUid) + "; " +
             std::to_string(item.pendingFailedShots) +
             " shots lost (outcome marked degraded)");
        journalReplan(item, item.pendingFailedShots, 0, true,
                      item.pendingDetectH);
        finalizeItem(item);
        return;
    }
    const int failedShots = item.pendingFailedShots;
    const double atH = item.pendingDetectH;
    item.pendingFailedShots = 0;
    item.pendingDetectH = 0.0;
    const std::size_t firstNew = item.shards.size();
    if (!planShards(item, failedShots, atH)) {
        warn("ServiceNode: no surviving member for requeue of work "
             "item " +
             std::to_string(item.workUid));
        journalReplan(item, failedShots, 0, true, atH);
        finalizeItem(item);
        return;
    }
    const std::size_t planned = item.shards.size() - firstNew;
    item.requeues += static_cast<int>(planned);
    counters_.shardsRequeued += static_cast<uint64_t>(planned);
    ++item.requeueRound;
    journalReplan(item, failedShots, static_cast<int>(planned), false,
                  atH);
    std::vector<ShardRef> batch;
    batch.reserve(planned);
    for (std::size_t i = firstNew; i < item.shards.size(); ++i)
        batch.push_back(ShardRef{&item, i});
    executeShards(batch);
    scheduleShardEvents(item, firstNew);
}

void
ServiceNode::journalReplan(const WorkItem &item, int failedShots,
                           int planned, bool exhausted, double atH)
{
    if (!sink_)
        return;
    replay::EventRecord r;
    r.kind = replay::EventKind::Replan;
    r.tH = atH;
    r.workUid = item.workUid;
    r.round = item.requeueRound;
    r.shots = failedShots;
    r.planned = planned;
    r.exhausted = exhausted;
    sink_->record(r);
}

// ---------------------------------------------------------------------------
// Finalize event: aggregate in shard-sequence order, complete riders
// ---------------------------------------------------------------------------

void
ServiceNode::finalizeItem(WorkItem &item)
{
    double energy, variance, pc, completeH;
    int shotsExec, shardsExec, circuits, primary;
    if (item.fromCache) {
        energy = item.cached.energy;
        variance = item.cached.variance;
        pc = item.cached.pCorrect;
        completeH = item.t0;
        shotsExec = item.cached.shots;
        shardsExec = 0;
        circuits = 0;
        primary = -1;
    } else {
        // Shard results were buffered as their events fired; the
        // aggregate folds them in sequence order, so the combination
        // is independent of completion interleaving (and identical to
        // the synchronous drain's round order).
        for (const Shard &s : item.shards)
            item.agg.add(s.result);
        energy = item.agg.energy();
        variance = item.agg.variance();
        pc = item.agg.pCorrect();
        completeH = item.agg.completeH();
        shotsExec = item.agg.shotsExecuted();
        shardsExec = item.agg.shardsExecuted();
        circuits = item.agg.circuitsRun();
        primary = item.agg.primaryMember();
        counters_.jobsCoalesced +=
            static_cast<uint64_t>(item.riders.size() - 1);
        CachedResult cr;
        cr.energy = energy;
        cr.variance = variance;
        cr.pCorrect = pc;
        cr.completeH = completeH;
        cr.shots = shotsExec;
        cache_.store(item.key, cr);
    }
    bool first = true;
    for (const JobQueue::Entry &rider : item.riders) {
        JobOutcome o;
        o.jobId = rider.jobId;
        o.tenantId = rider.request.tenantId;
        o.workload = item.key.workload;
        o.energy = energy;
        o.variance = variance;
        o.pCorrect = pc;
        o.submitH = rider.request.submitH;
        o.completeH =
            item.fromCache ? rider.request.submitH : completeH;
        o.latencyH = std::max(0.0, o.completeH - rider.request.submitH);
        o.shotsExecuted = shotsExec;
        o.shardsExecuted = shardsExec;
        o.requeues = item.requeues;
        o.circuitsRun = circuits;
        o.primaryMember = primary;
        o.coalesced = !first && !item.fromCache;
        o.fromCache = item.fromCache;
        o.degraded = !item.fromCache && shotsExec < item.shots;
        latency_.add(o.latencyH);
        latencyMoments_.add(o.latencyH);
        if (sink_) {
            replay::EventRecord r;
            r.kind = replay::EventKind::Finalize;
            r.tH = loop_.now();
            r.jobId = o.jobId;
            r.workUid = item.workUid;
            r.tenant = o.tenantId;
            r.workload = o.workload;
            r.energy = o.energy;
            r.variance = o.variance;
            r.pCorrect = o.pCorrect;
            r.doneH = o.completeH;
            r.shots = o.shotsExecuted;
            r.shardsRun = o.shardsExecuted;
            r.circuits = o.circuitsRun;
            r.round = o.requeues;
            r.degraded = o.degraded;
            r.fromCache = o.fromCache;
            r.coalesced = o.coalesced;
            sink_->record(r);
        }
        completed_.push_back(std::move(o));
        first = false;
    }
    item.finished = true;
}

// ---------------------------------------------------------------------------
// Drain: run the loop until idle, collect outcomes
// ---------------------------------------------------------------------------

std::vector<JobOutcome>
ServiceNode::drain(TaskPool *pool)
{
    if (sink_) {
        replay::EventRecord r;
        r.kind = replay::EventKind::Drain;
        r.tH = loop_.now();
        sink_->record(r);
    }
    exec_ = pool ? pool : &TaskPool::shared();
    loop_.run();
    exec_ = nullptr;

    active_.erase(
        std::remove_if(active_.begin(), active_.end(),
                       [](const std::unique_ptr<WorkItem> &item) {
                           return item->finished;
                       }),
        active_.end());

    std::vector<JobOutcome> outcomes = std::move(completed_);
    completed_.clear();
    std::sort(outcomes.begin(), outcomes.end(),
              [](const JobOutcome &a, const JobOutcome &b) {
                  return a.jobId < b.jobId;
              });
    return outcomes;
}

} // namespace serve
} // namespace eqc
