#include "serve/service_node.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/logging.h"
#include "common/task_pool.h"
#include "device/calibration.h"

namespace eqc {
namespace serve {

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

/** One ensemble member: device, backend, failure clock, drain depth. */
struct ServiceNode::Member
{
    Device device;
    std::unique_ptr<SimulatedQpu> backend;
    /** Hour the member dies (infinity = healthy). */
    double failAtH = std::numeric_limits<double>::infinity();
    /** Shards assigned in the current drain (queue-depth input). */
    int depth = 0;

    bool aliveAt(double atH) const { return atH < failAtH; }
};

/** One registered workload: estimator + per-member compilation. */
struct ServiceNode::Workload
{
    ExpectationEstimator estimator;
    int numParams = 0;
    int numQubits = 0;
    /** Per member: transpiled group circuits (empty = ineligible). */
    std::vector<std::vector<TranspiledCircuit>> compiled;
    /** Per member: duration of one group circuit (microseconds). */
    std::vector<double> durUs;
    /** Per member: Eq. 2 census of each group circuit. */
    std::vector<std::vector<CircuitQuality>> quality;

    Workload(const PauliSum &observable, const QuantumCircuit &ansatz)
        : estimator(observable, ansatz),
          numParams(ansatz.numParams()),
          numQubits(ansatz.numQubits())
    {
    }
};

/** One planned shard execution. */
struct ServiceNode::Shard
{
    /** Owning work item (index into the drain's item vector). */
    std::size_t item = 0;
    int member = -1;
    int shots = 0;
    double startH = 0.0;
    /** Eq. 2 score at planning time (travels into the aggregate). */
    double pCorrect = 0.0;
    /** Member queue depth when planned (latency scaling). */
    int depthAtPlan = 0;
    /** Per-work-item shard sequence (RNG fork label). */
    int seq = 0;
    /**
     * Hour the failure surfaces when the member dies mid-shard (the
     * caller times out at the shard's expected completion).
     */
    double detectH = 0.0;
    ShardResult result;
};

/** One coalesced unit of work and its riders. */
struct ServiceNode::WorkItem
{
    WorkKey key;
    uint64_t workUid = 0;
    /** Earliest rider submission: when execution can start. */
    double t0 = 0.0;
    /** Latest rider submission: cache freshness is judged here, so a
     *  hit is within TTL for *every* rider, not just the earliest. */
    double tLast = 0.0;
    /** Largest rider budget: what actually executes. */
    int shots = 0;
    /** Riders in pop (priority) order. */
    std::vector<JobQueue::Entry> riders;
    /** Next RNG fork label for this item's shards. */
    int shardSeq = 0;
    int requeues = 0;
    bool fromCache = false;
    CachedResult cached;
    Aggregator agg;

    explicit WorkItem(AggregationMode mode) : agg(mode) {}
};

// ---------------------------------------------------------------------------
// Construction / registration
// ---------------------------------------------------------------------------

ServiceNode::ServiceNode(std::vector<Device> devices,
                         ServiceOptions options)
    : options_(options), queue_(options.admission),
      scheduler_(options.scheduler),
      cache_(options.resultCacheTtlH, options.resultCacheCapacity),
      rootRng_(Rng(options.seed).fork("serve")),
      latency_(options.latencyReservoir, options.seed)
{
    if (devices.empty())
        fatal("ServiceNode: empty device list");
    members_.reserve(devices.size());
    for (Device &dev : devices) {
        Member m;
        m.backend = std::make_unique<SimulatedQpu>(dev, options_.seed);
        m.device = std::move(dev);
        members_.push_back(std::move(m));
    }
}

ServiceNode::~ServiceNode() = default;

WorkloadId
ServiceNode::registerWorkload(const QuantumCircuit &ansatz,
                              const PauliSum &observable)
{
    auto w = std::make_unique<Workload>(observable, ansatz);
    w->compiled.resize(members_.size());
    w->durUs.resize(members_.size(), 0.0);
    w->quality.resize(members_.size());
    std::size_t eligible = 0;
    for (std::size_t i = 0; i < members_.size(); ++i) {
        const Member &m = members_[i];
        if (!m.device.canRun(w->numQubits))
            continue;
        w->compiled[i] = w->estimator.compileFor(m.device.coupling);
        w->durUs[i] = circuitDurationUs(w->compiled[i][0].compact,
                                        m.device.baseCalibration,
                                        w->compiled[i][0].compactToPhysical);
        for (const TranspiledCircuit &tc : w->compiled[i])
            w->quality[i].push_back(circuitQuality(tc));
        ++eligible;
    }
    if (eligible == 0)
        fatal("ServiceNode: no member can run a " +
              std::to_string(w->numQubits) + "-qubit workload");
    workloads_.push_back(std::move(w));
    return static_cast<WorkloadId>(workloads_.size() - 1);
}

// ---------------------------------------------------------------------------
// Submission
// ---------------------------------------------------------------------------

Ticket
ServiceNode::submit(const JobRequest &request)
{
    Ticket t;
    const bool knownWorkload =
        request.workload >= 0 &&
        request.workload < static_cast<WorkloadId>(workloads_.size());
    if (!knownWorkload ||
        static_cast<int>(request.params.size()) !=
            workloads_[request.workload]->numParams) {
        t.status = AdmitStatus::RejectedBadRequest;
        ++counters_.jobsRejected;
        return t;
    }
    t.status = queue_.admit(request, nextJobId_);
    if (t.admitted()) {
        t.jobId = nextJobId_++;
        ++counters_.jobsAdmitted;
    } else {
        ++counters_.jobsRejected;
    }
    return t;
}

// ---------------------------------------------------------------------------
// Member health
// ---------------------------------------------------------------------------

void
ServiceNode::failMemberAt(std::size_t member, double atH)
{
    members_.at(member).failAtH = atH;
}

void
ServiceNode::restoreMember(std::size_t member)
{
    members_.at(member).failAtH =
        std::numeric_limits<double>::infinity();
}

std::size_t
ServiceNode::numMembers() const
{
    return members_.size();
}

std::size_t
ServiceNode::aliveMembers(double atH) const
{
    std::size_t n = 0;
    for (const Member &m : members_)
        if (m.aliveAt(atH))
            ++n;
    return n;
}

const Device &
ServiceNode::memberDevice(std::size_t member) const
{
    return members_.at(member).device;
}

double
ServiceNode::workloadPCorrect(const Workload &w, std::size_t member,
                              double atH) const
{
    if (w.quality[member].empty())
        return 0.0;
    CalibrationSnapshot reported =
        members_[member].backend->reportedCalibration(atH);
    double sum = 0.0;
    for (const CircuitQuality &q : w.quality[member])
        sum += pCorrect(q, reported, options_.pCorrectMode);
    return sum / static_cast<double>(w.quality[member].size());
}

double
ServiceNode::memberPCorrect(std::size_t member, WorkloadId workload,
                            double atH) const
{
    (void)members_.at(member); // public entry: bounds-check the index
    return workloadPCorrect(*workloads_.at(workload), member, atH);
}

// ---------------------------------------------------------------------------
// Shard planning and execution
// ---------------------------------------------------------------------------

std::vector<MemberView>
ServiceNode::memberViews(const Workload &w, double atH,
                         int shotsPerMember) const
{
    std::vector<MemberView> views;
    views.reserve(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i) {
        const Member &m = members_[i];
        MemberView v;
        v.member = static_cast<int>(i);
        v.available = m.aliveAt(atH) && !w.compiled[i].empty();
        if (v.available) {
            v.pCorrect = workloadPCorrect(w, i, atH);
            v.expectedLatencyS = m.backend->queue().expectedLatencyS(
                atH, w.durUs[i], shotsPerMember,
                static_cast<int>(w.compiled[i].size()), m.depth);
        }
        views.push_back(v);
    }
    return views;
}

// ---------------------------------------------------------------------------
// Drain
// ---------------------------------------------------------------------------

std::vector<JobOutcome>
ServiceNode::drain(TaskPool *pool)
{
    std::vector<JobOutcome> outcomes;
    if (queue_.empty())
        return outcomes;
    TaskPool &exec = pool ? *pool : TaskPool::shared();

    // Phase 1: pop everything in priority order, coalescing identical
    // (workload, binding) requests into work items.
    std::vector<WorkItem> items;
    std::unordered_map<WorkKey, std::size_t, WorkKeyHash> open;
    while (!queue_.empty()) {
        JobQueue::Entry e = queue_.pop();
        WorkKey key{e.request.workload, e.request.params};
        auto it = open.find(key);
        if (it == open.end()) {
            WorkItem item(options_.aggregation);
            item.key = std::move(key);
            item.workUid = nextWorkId_++;
            item.t0 = e.request.submitH;
            item.tLast = e.request.submitH;
            item.shots = e.request.shots;
            item.riders.push_back(std::move(e));
            items.push_back(std::move(item));
            open.emplace(items.back().key, items.size() - 1);
        } else {
            WorkItem &item = items[it->second];
            item.t0 = std::min(item.t0, e.request.submitH);
            item.tLast = std::max(item.tLast, e.request.submitH);
            item.shots = std::max(item.shots, e.request.shots);
            item.riders.push_back(std::move(e));
            // jobsCoalesced is counted at completion, once the item
            // knows whether it executed or served from cache — every
            // rider lands in exactly one counter category.
        }
    }

    // Phase 2: result-cache lookups, then shard planning for the
    // items that must execute. Depths restart each drain (previous
    // work has completed by construction of the virtual clock).
    for (Member &m : members_)
        m.depth = 0;
    std::vector<Shard> round;
    for (std::size_t ii = 0; ii < items.size(); ++ii) {
        WorkItem &item = items[ii];
        if (const CachedResult *hit =
                cache_.lookup(item.key, item.tLast, item.shots)) {
            item.fromCache = true;
            item.cached = *hit;
            counters_.cacheHits += item.riders.size();
            continue;
        }
        ++counters_.workItems;
        const Workload &w = *workloads_[item.key.workload];
        const int guess =
            item.shots /
            std::max<int>(1,
                          static_cast<int>(aliveMembers(item.t0)));
        std::vector<MemberView> views =
            memberViews(w, item.t0, guess);
        for (const ShardPlan &p : scheduler_.plan(views, item.shots)) {
            Shard s;
            s.item = ii;
            s.member = p.member;
            s.shots = p.shots;
            s.startH = item.t0;
            s.pCorrect =
                views[static_cast<std::size_t>(p.member)].pCorrect;
            s.depthAtPlan = members_[p.member].depth;
            s.seq = item.shardSeq++;
            ++members_[p.member].depth;
            round.push_back(s);
        }
    }

    // Phase 3: execute rounds. Each shard owns an RNG stream forked
    // from (work uid, shard seq) — a pure function of ids — and
    // writes only its own slot, so any parallelJobs chunking yields
    // bit-identical results. Failures detected after the round are
    // requeued serially onto surviving members.
    int requeueRound = 0;
    while (!round.empty()) {
        exec.parallelJobs(
            round.size(), [&](uint64_t b, uint64_t e) {
                for (uint64_t si = b; si < e; ++si) {
                    Shard &s = round[si];
                    WorkItem &item = items[s.item];
                    const Workload &w =
                        *workloads_[item.key.workload];
                    Member &m = members_[static_cast<std::size_t>(
                        s.member)];
                    Rng rng =
                        rootRng_.fork(item.workUid).fork(
                            static_cast<uint64_t>(s.seq));
                    const int groups = static_cast<int>(
                        w.compiled[s.member].size());
                    double latS = m.backend->queue().jobLatencyS(
                        s.startH, w.durUs[s.member], s.shots, groups,
                        rng, s.depthAtPlan);
                    double completeH = s.startH + latS / 3600.0;
                    s.result.member = s.member;
                    s.result.shots = s.shots;
                    s.result.pCorrect = s.pCorrect;
                    if (!m.aliveAt(completeH)) {
                        // The member died between planning and
                        // completion: the shard never returns and the
                        // caller times out at its expected completion.
                        s.result.failed = true;
                        s.detectH = std::max(completeH, s.startH);
                        continue;
                    }
                    EnergyEstimate est = w.estimator.estimate(
                        *m.backend, w.compiled[s.member], item.key.params,
                        s.shots, completeH, rng, options_.shotMode,
                        options_.readoutMitigation, &exec);
                    s.result.energy = est.energy;
                    s.result.variance = est.variance;
                    s.result.completeH = completeH;
                    s.result.circuitsRun = est.circuitsRun;
                    s.result.failed = false;
                }
            });

        // Serial post-round: stream results into the aggregators and
        // plan replacement shards for failures.
        std::vector<Shard> next;
        std::vector<int> failedShots(items.size(), 0);
        std::vector<double> failedDetectH(items.size(), 0.0);
        for (Shard &s : round) {
            WorkItem &item = items[s.item];
            item.agg.add(s.result);
            if (s.result.failed) {
                failedShots[s.item] += s.shots;
                failedDetectH[s.item] =
                    std::max(failedDetectH[s.item], s.detectH);
            } else {
                ++counters_.shardsExecuted;
                counters_.shotsExecuted +=
                    static_cast<uint64_t>(s.shots);
                counters_.circuitsExecuted +=
                    static_cast<uint64_t>(s.result.circuitsRun);
            }
        }
        if (requeueRound >= options_.maxRequeueRounds) {
            for (std::size_t ii = 0; ii < items.size(); ++ii)
                if (failedShots[ii] > 0)
                    warn("ServiceNode: requeue rounds exhausted for "
                         "work item " +
                         std::to_string(items[ii].workUid) + "; " +
                         std::to_string(failedShots[ii]) +
                         " shots lost (outcome marked degraded)");
            break;
        }
        bool anyRequeued = false;
        for (std::size_t ii = 0; ii < items.size(); ++ii) {
            if (failedShots[ii] == 0)
                continue;
            WorkItem &item = items[ii];
            const Workload &w = *workloads_[item.key.workload];
            double atH = failedDetectH[ii];
            const int guess =
                failedShots[ii] /
                std::max<int>(1,
                              static_cast<int>(aliveMembers(atH)));
            std::vector<MemberView> views =
                memberViews(w, atH, guess);
            std::vector<ShardPlan> plan =
                scheduler_.plan(views, failedShots[ii]);
            if (plan.empty()) {
                warn("ServiceNode: no surviving member for requeue of "
                     "work item " +
                     std::to_string(item.workUid));
                continue;
            }
            for (const ShardPlan &p : plan) {
                Shard s;
                s.item = ii;
                s.member = p.member;
                s.shots = p.shots;
                s.startH = atH;
                s.pCorrect =
                    views[static_cast<std::size_t>(p.member)]
                        .pCorrect;
                s.depthAtPlan = members_[p.member].depth;
                s.seq = item.shardSeq++;
                ++members_[p.member].depth;
                next.push_back(s);
            }
            item.requeues +=
                static_cast<int>(plan.size());
            counters_.shardsRequeued +=
                static_cast<uint64_t>(plan.size());
            anyRequeued = true;
        }
        if (!anyRequeued)
            break;
        round = std::move(next);
        ++requeueRound;
    }

    // Phase 4: complete every rider. Aggregation runs in item order
    // (pop order), outcomes are returned sorted by job id.
    for (WorkItem &item : items) {
        double energy, variance, pc, completeH;
        int shotsExec, shardsExec, circuits, primary;
        if (item.fromCache) {
            energy = item.cached.energy;
            variance = item.cached.variance;
            pc = item.cached.pCorrect;
            completeH = item.t0;
            shotsExec = item.cached.shots;
            shardsExec = 0;
            circuits = 0;
            primary = -1;
        } else {
            energy = item.agg.energy();
            variance = item.agg.variance();
            pc = item.agg.pCorrect();
            completeH = item.agg.completeH();
            shotsExec = item.agg.shotsExecuted();
            shardsExec = item.agg.shardsExecuted();
            circuits = item.agg.circuitsRun();
            primary = item.agg.primaryMember();
            counters_.jobsCoalesced +=
                static_cast<uint64_t>(item.riders.size() - 1);
            CachedResult cr;
            cr.energy = energy;
            cr.variance = variance;
            cr.pCorrect = pc;
            cr.completeH = completeH;
            cr.shots = shotsExec;
            cache_.store(item.key, cr);
        }
        bool first = true;
        for (const JobQueue::Entry &rider : item.riders) {
            JobOutcome o;
            o.jobId = rider.jobId;
            o.tenantId = rider.request.tenantId;
            o.workload = item.key.workload;
            o.energy = energy;
            o.variance = variance;
            o.pCorrect = pc;
            o.submitH = rider.request.submitH;
            o.completeH = item.fromCache ? rider.request.submitH
                                         : completeH;
            o.latencyH =
                std::max(0.0, o.completeH - rider.request.submitH);
            o.shotsExecuted = shotsExec;
            o.shardsExecuted = shardsExec;
            o.requeues = item.requeues;
            o.circuitsRun = circuits;
            o.primaryMember = primary;
            o.coalesced = !first && !item.fromCache;
            o.fromCache = item.fromCache;
            o.degraded = !item.fromCache && shotsExec < item.shots;
            latency_.add(o.latencyH);
            latencyMoments_.add(o.latencyH);
            outcomes.push_back(std::move(o));
            first = false;
        }
    }
    std::sort(outcomes.begin(), outcomes.end(),
              [](const JobOutcome &a, const JobOutcome &b) {
                  return a.jobId < b.jobId;
              });
    return outcomes;
}

} // namespace serve
} // namespace eqc
