#include "serve/service_node.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/logging.h"
#include "common/task_pool.h"
#include "device/calibration.h"
#include "replay/journal.h"

namespace eqc {
namespace serve {

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

/** One ensemble member: device, backend, failure clock, plan depth. */
struct ServiceNode::Member
{
    Device device;
    std::unique_ptr<SimulatedQpu> backend;
    /** Hour the member dies (infinity = healthy). */
    double failAtH = std::numeric_limits<double>::infinity();
    /** Hour the member joined (-infinity = original lineup). */
    double joinAtH = -std::numeric_limits<double>::infinity();
    /** Hour the member retires from planning (infinity = never). */
    double leaveAtH = std::numeric_limits<double>::infinity();
    /** Failures since the last manual restore (supervision backoff). */
    int consecutiveFails = 0;
    /**
     * Shards planned onto the member whose completion/timeout event
     * has not fired yet (queue pressure). Incremented at planning,
     * decremented as each shard resolves, so requeue rounds and
     * retry-after estimates price the *live* backlog rather than the
     * pressure of the last intake alone.
     */
    int depth = 0;

    bool aliveAt(double atH) const { return atH < failAtH; }

    /** aliveAt plus the membership window: may new shards plan here? */
    bool planEligibleAt(double atH) const
    {
        return aliveAt(atH) && atH >= joinAtH && atH < leaveAtH;
    }
};

/** One registered workload: estimator + per-member compilation. */
struct ServiceNode::Workload
{
    ExpectationEstimator estimator;
    int numParams = 0;
    int numQubits = 0;
    /** Per member: transpiled group circuits (empty = ineligible). */
    std::vector<std::vector<TranspiledCircuit>> compiled;
    /** Per member: duration of one group circuit (microseconds). */
    std::vector<double> durUs;
    /** Per member: Eq. 2 census of each group circuit. */
    std::vector<std::vector<CircuitQuality>> quality;

    Workload(const PauliSum &observable, const QuantumCircuit &ansatz)
        : estimator(observable, ansatz),
          numParams(ansatz.numParams()),
          numQubits(ansatz.numQubits())
    {
    }
};

/** One planned shard execution. */
struct ServiceNode::Shard
{
    int member = -1;
    int shots = 0;
    double startH = 0.0;
    /** Eq. 2 score at planning time (travels into the aggregate). */
    double pCorrect = 0.0;
    /** Member queue depth when planned (latency scaling). */
    int depthAtPlan = 0;
    /** Per-work-item shard sequence (RNG fork label). */
    int seq = 0;
    /**
     * Hour the failure surfaces when the member dies mid-shard (the
     * caller times out at the shard's expected completion).
     */
    double detectH = 0.0;
    /** The shard's completion/timeout event has fired. */
    bool resolved = false;
    ShardResult result;
};

/**
 * One coalesced unit of work and its riders. Lives on the event loop:
 * shards resolve one completion/timeout event at a time, and the item
 * finalizes when its last outstanding shard has resolved.
 */
struct ServiceNode::WorkItem
{
    WorkKey key;
    uint64_t workUid = 0;
    /** Earliest rider submission: when execution can start. */
    double t0 = 0.0;
    /** Latest rider submission: cache freshness is judged here, so a
     *  hit is within TTL for *every* rider, not just the earliest. */
    double tLast = 0.0;
    /** Largest rider budget: what actually executes. */
    int shots = 0;
    /** Riders in pop (priority) order. */
    std::vector<JobQueue::Entry> riders;
    /** Every shard ever planned for the item, in sequence order. */
    std::vector<Shard> shards;
    /** Next RNG fork label for this item's shards. */
    int shardSeq = 0;
    /** Shards whose completion/timeout event has not fired yet. */
    std::size_t outstanding = 0;
    int requeues = 0;
    /** Requeue plans already made for this item. */
    int requeueRound = 0;
    /** Failed shots accumulated since the last (re)queue round. */
    int pendingFailedShots = 0;
    /** Latest failure-detection hour of the pending failures. */
    double pendingDetectH = 0.0;
    bool fromCache = false;
    bool finished = false;
    /** Shards have been handed to members (rider-join cutoff for
     *  budget growth: after dispatch a rider may only ride a budget
     *  no larger than what is executing). */
    bool dispatched = false;
    /** Waiting parked for a member to become plannable. */
    bool parked = false;
    /** Event id of the pending park-retry event (valid when parked). */
    uint64_t retryEventId = 0;
    /** Park-retry rounds consumed (bounded by maxRequeueRounds). */
    int parkRounds = 0;
    /** The item was shed by a deadline event. */
    bool shed = false;
    /** Shots abandoned by the shed. */
    int shedShots = 0;
    /** Hour the shed fired: sampled once so the journal record and
     *  the finalized completion hour agree bit-for-bit even under a
     *  SteadyClock, whose now() keeps moving between the two. */
    double shedAtH = 0.0;
    CachedResult cached;
    Aggregator agg;

    explicit WorkItem(AggregationMode mode) : agg(mode) {}
};

// ---------------------------------------------------------------------------
// Construction / registration
// ---------------------------------------------------------------------------

ServiceNode::ServiceNode(std::vector<Device> devices,
                         ServiceOptions options, Clock *clock)
    : options_(options), clock_(clock ? clock : &ownClock_),
      loop_(*clock_), queue_(options.admission),
      scheduler_(options.scheduler),
      cache_(clock_, options.resultCacheTtlH,
             options.resultCacheCapacity),
      rootRng_(Rng(options.seed).fork("serve")),
      latency_(options.latencyReservoir, options.seed),
      retryAfter_(options.latencyReservoir, options.seed + 1),
      counters_(makeCounters(metrics_)), ins_(makeInstruments(metrics_))
{
    if (devices.empty())
        fatal("ServiceNode: empty device list");
    nextJobId_ = options_.firstJobId ? options_.firstJobId : 1;
    nextWorkId_ = options_.firstWorkUid ? options_.firstWorkUid : 1;
    members_.reserve(devices.size());
    for (Device &dev : devices) {
        Member m;
        m.backend = std::make_unique<SimulatedQpu>(dev, options_.seed);
        m.device = std::move(dev);
        members_.push_back(std::move(m));
    }
    memberShots_.assign(members_.size(), 0);
}

ServiceNode::NodeCounters
ServiceNode::makeCounters(obs::MetricsRegistry &m)
{
    return NodeCounters{
        *m.counter("eqc_service_jobs_admitted_total", "Jobs admitted"),
        *m.counter("eqc_service_jobs_rejected_total", "Jobs rejected"),
        *m.counter("eqc_service_rejected_queue_full_total",
                   "Rejections: node queue at capacity"),
        *m.counter("eqc_service_rejected_tenant_quota_total",
                   "Rejections: tenant at quota"),
        *m.counter("eqc_service_rejected_bad_request_total",
                   "Rejections: malformed request"),
        *m.counter("eqc_service_rejected_deadline_total",
                   "Rejections: deadline already passed"),
        *m.counter("eqc_service_jobs_coalesced_total",
                   "Jobs that rode an identical work item"),
        *m.counter("eqc_service_cache_hits_total",
                   "Jobs answered from the result cache"),
        *m.counter("eqc_service_work_items_total",
                   "Distinct work items executed"),
        *m.counter("eqc_service_shards_executed_total",
                   "Shards completed"),
        *m.counter("eqc_service_shards_requeued_total",
                   "Shards replanned after member failures"),
        *m.counter("eqc_service_shots_executed_total", "Shots executed"),
        *m.counter("eqc_service_circuits_executed_total",
                   "Circuits executed"),
        *m.counter("eqc_service_deadlines_met_total",
                   "Jobs with an SLO that completed inside it"),
        *m.counter("eqc_service_deadline_sheds_total",
                   "Work items shed at their deadline"),
        *m.counter("eqc_service_shots_shed_total",
                   "Shots abandoned by deadline sheds"),
        *m.counter("eqc_service_riders_joined_total",
                   "Jobs that joined a dispatched item mid-flight"),
        *m.counter("eqc_service_member_joins_total",
                   "Members added live"),
        *m.counter("eqc_service_member_leaves_total",
                   "Members retired live"),
        *m.counter("eqc_service_supervised_restores_total",
                   "Automatic supervision restores"),
    };
}

ServiceNode::NodeInstruments
ServiceNode::makeInstruments(obs::MetricsRegistry &m)
{
    NodeInstruments ins;
    ins.latencyH = m.histogram(
        "eqc_service_latency_hours",
        {0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0},
        "Per-job service latency (serving-clock hours)");
    ins.queueWaitH = m.histogram(
        "eqc_service_queue_wait_hours",
        {0.0005, 0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5},
        "Admit-to-first-dispatch wait of executed items (hours)");
    ins.retryAfterS = m.histogram(
        "eqc_service_retry_after_seconds",
        {1.0, 5.0, 15.0, 60.0, 300.0, 900.0, 3600.0},
        "Backpressure hints handed to capacity-rejected jobs");
    ins.batchMembers = m.histogram(
        "eqc_pool_batch_members", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0},
        "Members advanced together per batched work-item sweep");
    ins.queueDepth =
        m.gauge("eqc_service_queue_depth", "Jobs admitted, not popped");
    ins.activeItems =
        m.gauge("eqc_service_active_items", "Work items in flight");
    ins.inflightShards = m.gauge("eqc_service_inflight_shards",
                                 "Planned shards not yet resolved");
    ins.aliveMembers = m.gauge("eqc_service_alive_members",
                               "Members eligible for planning");
    return ins;
}

ServiceCounters
ServiceNode::counters() const
{
    ServiceCounters c;
    c.jobsAdmitted = counters_.jobsAdmitted.value();
    c.jobsRejected = counters_.jobsRejected.value();
    c.rejectedQueueFull = counters_.rejectedQueueFull.value();
    c.rejectedTenantQuota = counters_.rejectedTenantQuota.value();
    c.rejectedBadRequest = counters_.rejectedBadRequest.value();
    c.rejectedDeadline = counters_.rejectedDeadline.value();
    c.jobsCoalesced = counters_.jobsCoalesced.value();
    c.cacheHits = counters_.cacheHits.value();
    c.workItems = counters_.workItems.value();
    c.shardsExecuted = counters_.shardsExecuted.value();
    c.shardsRequeued = counters_.shardsRequeued.value();
    c.shotsExecuted = counters_.shotsExecuted.value();
    c.circuitsExecuted = counters_.circuitsExecuted.value();
    c.deadlinesMet = counters_.deadlinesMet.value();
    c.deadlineSheds = counters_.deadlineSheds.value();
    c.shotsShed = counters_.shotsShed.value();
    c.ridersJoined = counters_.ridersJoined.value();
    c.memberJoins = counters_.memberJoins.value();
    c.memberLeaves = counters_.memberLeaves.value();
    c.supervisedRestores = counters_.supervisedRestores.value();
    return c;
}

ServiceNode::~ServiceNode() { stopServe(); }

void
ServiceNode::compileWorkloadForMember(Workload &w, std::size_t i)
{
    const Member &m = members_[i];
    if (!m.device.canRun(w.numQubits))
        return;
    w.compiled[i] = w.estimator.compileFor(m.device.coupling);
    w.durUs[i] = circuitDurationUs(w.compiled[i][0].compact,
                                   m.device.baseCalibration,
                                   w.compiled[i][0].compactToPhysical);
    for (const TranspiledCircuit &tc : w.compiled[i])
        w.quality[i].push_back(circuitQuality(tc));
}

WorkloadId
ServiceNode::registerWorkload(const QuantumCircuit &ansatz,
                              const PauliSum &observable)
{
    auto w = std::make_unique<Workload>(observable, ansatz);
    w->compiled.resize(members_.size());
    w->durUs.resize(members_.size(), 0.0);
    w->quality.resize(members_.size());
    std::size_t eligible = 0;
    for (std::size_t i = 0; i < members_.size(); ++i) {
        compileWorkloadForMember(*w, i);
        if (!w->compiled[i].empty())
            ++eligible;
    }
    if (eligible == 0)
        fatal("ServiceNode: no member can run a " +
              std::to_string(w->numQubits) + "-qubit workload");
    workloads_.push_back(std::move(w));
    return static_cast<WorkloadId>(workloads_.size() - 1);
}

// ---------------------------------------------------------------------------
// Submission (admission + backpressure)
// ---------------------------------------------------------------------------

double
ServiceNode::retryAfterHintS(double atH, std::size_t depth) const
{
    // Spread the node-wide backlog across the live ensemble and quote
    // the cheapest member's expected wait at that per-member pressure.
    // Strictly increasing in @p depth: the fractional per-member depth
    // grows with every queued job and every member's expectedWaitS is
    // strictly increasing in it.
    std::size_t alive = 0;
    for (const Member &m : members_)
        if (m.planEligibleAt(atH))
            ++alive;
    const bool anyAlive = alive > 0;
    const double perMember =
        static_cast<double>(depth) /
        static_cast<double>(anyAlive ? alive : members_.size());
    double best = std::numeric_limits<double>::infinity();
    for (const Member &m : members_) {
        if (anyAlive && !m.planEligibleAt(atH))
            continue;
        best = std::min(best,
                        m.backend->queue().expectedWaitS(atH, perMember));
    }
    return best;
}

void
ServiceNode::journalSubmit(const JobRequest &request, const Ticket &t,
                           double atH)
{
    replay::EventRecord r;
    r.kind = t.admitted() ? replay::EventKind::Admit
                          : replay::EventKind::Reject;
    r.tH = atH;
    r.jobId = t.jobId;
    r.tenant = request.tenantId;
    r.workload = request.workload;
    r.shots = request.shots;
    r.priority = request.priority;
    r.submitH = request.submitH;
    r.status = static_cast<int>(t.status);
    r.depth = static_cast<int>(queue_.size());
    r.retryAfterS = t.retryAfterS;
    r.deadlineH = request.deadlineH;
    r.params = request.params;
    // In-memory only (never serialized): lets an attached TraceSink
    // correlate forwarded hops without perturbing journal bytes.
    r.traceId = request.traceId ? request.traceId : t.jobId;
    sink_->record(r);
}

Ticket
ServiceNode::submit(const JobRequest &request)
{
    Ticket t;
    const double atH = std::max(loop_.now(), request.submitH);
    const bool knownWorkload =
        request.workload >= 0 &&
        request.workload < static_cast<WorkloadId>(workloads_.size());
    if (!knownWorkload ||
        static_cast<int>(request.params.size()) !=
            workloads_[request.workload]->numParams) {
        t.status = AdmitStatus::RejectedBadRequest;
        ++counters_.jobsRejected;
        ++counters_.rejectedBadRequest;
        if (sink_)
            journalSubmit(request, t, atH);
        return t;
    }
    if (request.deadlineH > 0.0 && request.deadlineH <= atH) {
        // The SLO is already blown at the front door: rejecting
        // outright beats admitting work guaranteed to shed everything.
        t.status = AdmitStatus::RejectedDeadline;
        ++counters_.jobsRejected;
        ++counters_.rejectedDeadline;
        if (sink_)
            journalSubmit(request, t, atH);
        return t;
    }
    t.status = queue_.admit(request, nextJobId_);
    if (t.admitted()) {
        t.jobId = nextJobId_++;
        ++counters_.jobsAdmitted;
        // The job's intake is an event: the first intake to fire pops
        // and coalesces everything queued by then, later ones find an
        // empty queue and no-op. Under drain() every submission lands
        // before the loop runs, which preserves the batch-coalescing
        // semantics of the synchronous drain bit for bit.
        loop_.scheduleAt(atH, [this] { intake(); });
        if (request.deadlineH > 0.0) {
            // The SLO is an event of its own: it fires before the
            // deadline could be missed silently and sheds whatever is
            // still unresolved. Finalizing inside the SLO cancels it.
            const uint64_t jid = t.jobId;
            deadlineEvents_[jid] = loop_.scheduleAt(
                request.deadlineH, [this, jid] { onDeadline(jid); });
        }
    } else {
        ++counters_.jobsRejected;
        if (t.status == AdmitStatus::RejectedBadRequest) {
            ++counters_.rejectedBadRequest;
        } else {
            if (t.status == AdmitStatus::RejectedQueueFull)
                ++counters_.rejectedQueueFull;
            else
                ++counters_.rejectedTenantQuota;
            t.retryAfterS = retryAfterHintS(atH, queue_.size());
            retryAfter_.add(t.retryAfterS);
            ins_.retryAfterS->observe(t.retryAfterS);
        }
    }
    ins_.queueDepth->set(static_cast<double>(queue_.size()));
    if (sink_)
        journalSubmit(request, t, atH);
    return t;
}

// ---------------------------------------------------------------------------
// Member health
// ---------------------------------------------------------------------------

void
ServiceNode::failMemberAt(std::size_t member, double atH)
{
    Member &m = members_.at(member);
    m.failAtH = atH;
    if (sink_) {
        replay::EventRecord r;
        r.kind = replay::EventKind::MemberFail;
        r.tH = loop_.now();
        r.member = static_cast<int>(member);
        r.atH = atH;
        sink_->record(r);
    }
    ins_.aliveMembers->set(
        static_cast<double>(aliveMembers(loop_.now())));
    if (options_.superviseBaseBackoffH > 0.0) {
        // Supervision: auto-restore after an exponential backoff that
        // doubles with every failure since the last manual restore —
        // a flapping member earns progressively longer cool-downs.
        const double backoff =
            std::min(options_.superviseMaxBackoffH,
                     options_.superviseBaseBackoffH *
                         std::pow(2.0, m.consecutiveFails));
        ++m.consecutiveFails;
        const double armedFailAtH = atH;
        loop_.scheduleAt(
            atH + backoff, [this, member, armedFailAtH] {
                // Only restore the failure this event was armed for:
                // a manual restore or a newer failure supersedes it.
                if (members_[member].failAtH == armedFailAtH)
                    restoreMemberInternal(member, true);
            });
    }
}

void
ServiceNode::restoreMemberInternal(std::size_t member, bool supervised)
{
    Member &m = members_.at(member);
    m.failAtH = std::numeric_limits<double>::infinity();
    if (supervised)
        ++counters_.supervisedRestores;
    else
        m.consecutiveFails = 0; // a human fixed it: backoff resets
    if (sink_) {
        replay::EventRecord r;
        r.kind = replay::EventKind::MemberRestore;
        r.tH = loop_.now();
        r.member = static_cast<int>(member);
        r.autoRestore = supervised;
        sink_->record(r);
    }
    ins_.aliveMembers->set(
        static_cast<double>(aliveMembers(loop_.now())));
}

void
ServiceNode::restoreMember(std::size_t member)
{
    restoreMemberInternal(member, false);
}

std::size_t
ServiceNode::addMember(Device device, double atH)
{
    const std::size_t index = members_.size();
    const double joinH = std::max(atH, loop_.now());
    Member m;
    m.backend = std::make_unique<SimulatedQpu>(device, options_.seed);
    m.device = std::move(device);
    m.joinAtH = joinH;
    members_.push_back(std::move(m));
    memberShots_.push_back(0);
    for (std::unique_ptr<Workload> &w : workloads_) {
        w->compiled.resize(members_.size());
        w->durUs.resize(members_.size(), 0.0);
        w->quality.resize(members_.size());
        compileWorkloadForMember(*w, index);
    }
    ++counters_.memberJoins;
    if (sink_) {
        replay::EventRecord r;
        r.kind = replay::EventKind::MemberJoin;
        r.tH = loop_.now();
        r.member = static_cast<int>(index);
        r.name = members_[index].device.name;
        r.atH = joinH;
        sink_->record(r);
    }
    ins_.aliveMembers->set(
        static_cast<double>(aliveMembers(loop_.now())));
    // A parked item may become plannable the hour the member joins.
    loop_.scheduleAt(joinH, [this] { retryParkedItems(); });
    return index;
}

void
ServiceNode::removeMember(std::size_t member, double atH)
{
    Member &m = members_.at(member);
    m.leaveAtH = std::max(atH, loop_.now());
    ++counters_.memberLeaves;
    if (sink_) {
        replay::EventRecord r;
        r.kind = replay::EventKind::MemberLeave;
        r.tH = loop_.now();
        r.member = static_cast<int>(member);
        r.atH = m.leaveAtH;
        sink_->record(r);
    }
    ins_.aliveMembers->set(
        static_cast<double>(aliveMembers(loop_.now())));
}

std::size_t
ServiceNode::numMembers() const
{
    return members_.size();
}

std::size_t
ServiceNode::aliveMembers(double atH) const
{
    std::size_t n = 0;
    for (const Member &m : members_)
        if (m.planEligibleAt(atH))
            ++n;
    return n;
}

double
ServiceNode::coldFactor(const Member &m, double atH) const
{
    if (!std::isfinite(m.joinAtH))
        return 1.0; // original lineup: exactly full weight
    const double coldH = std::max(options_.scheduler.coldStartH, 1e-9);
    const double p = std::min(
        std::max(options_.scheduler.coldStartPenalty, 0.0), 1.0);
    const double ramp =
        std::min(std::max((atH - m.joinAtH) / coldH, 0.0), 1.0);
    return p + (1.0 - p) * ramp;
}

const Device &
ServiceNode::memberDevice(std::size_t member) const
{
    return members_.at(member).device;
}

int
ServiceNode::memberQueueDepth(std::size_t member) const
{
    return members_.at(member).depth;
}

double
ServiceNode::workloadPCorrect(const Workload &w, std::size_t member,
                              double atH) const
{
    if (w.quality[member].empty())
        return 0.0;
    CalibrationSnapshot reported =
        members_[member].backend->reportedCalibration(atH);
    double sum = 0.0;
    for (const CircuitQuality &q : w.quality[member])
        sum += pCorrect(q, reported, options_.pCorrectMode);
    return sum / static_cast<double>(w.quality[member].size());
}

double
ServiceNode::memberPCorrect(std::size_t member, WorkloadId workload,
                            double atH) const
{
    (void)members_.at(member); // public entry: bounds-check the index
    return workloadPCorrect(*workloads_.at(workload), member, atH);
}

// ---------------------------------------------------------------------------
// Shard planning
// ---------------------------------------------------------------------------

std::vector<MemberView>
ServiceNode::memberViews(const Workload &w, double atH,
                         int shotsPerMember) const
{
    std::vector<MemberView> views;
    views.reserve(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i) {
        const Member &m = members_[i];
        MemberView v;
        v.member = static_cast<int>(i);
        v.available = m.planEligibleAt(atH) && !w.compiled[i].empty();
        if (v.available) {
            v.pCorrect = workloadPCorrect(w, i, atH);
            v.expectedLatencyS = m.backend->queue().expectedLatencyS(
                atH, w.durUs[i], shotsPerMember,
                static_cast<int>(w.compiled[i].size()), m.depth);
            v.planWarm =
                m.backend->planCacheContains(w.compiled[i][0]);
            v.rateScale = coldFactor(m, atH);
        }
        views.push_back(v);
    }
    return views;
}

bool
ServiceNode::planShards(WorkItem &item, int shots, double atH)
{
    const Workload &w = *workloads_[item.key.workload];
    const int guess =
        shots /
        std::max<int>(1, static_cast<int>(aliveMembers(atH)));
    std::vector<MemberView> views = memberViews(w, atH, guess);
    std::vector<ShardPlan> plan = scheduler_.plan(views, shots);
    for (const ShardPlan &p : plan) {
        Shard s;
        s.member = p.member;
        s.shots = p.shots;
        s.startH = atH;
        s.pCorrect = views[static_cast<std::size_t>(p.member)].pCorrect;
        s.depthAtPlan = members_[static_cast<std::size_t>(p.member)].depth;
        s.seq = item.shardSeq++;
        ++members_[static_cast<std::size_t>(p.member)].depth;
        if (sink_) {
            replay::EventRecord r;
            r.kind = replay::EventKind::Dispatch;
            r.tH = atH;
            r.workUid = item.workUid;
            r.member = s.member;
            r.shots = s.shots;
            r.seq = s.seq;
            r.pCorrect = s.pCorrect;
            r.depth = s.depthAtPlan;
            sink_->record(r);
        }
        item.shards.push_back(s);
    }
    item.outstanding += plan.size();
    ins_.inflightShards->add(static_cast<double>(plan.size()));
    return !plan.empty();
}

// ---------------------------------------------------------------------------
// Intake event: coalesce, probe the cache, plan, launch
// ---------------------------------------------------------------------------

void
ServiceNode::intake()
{
    if (queue_.empty())
        return; // an earlier intake event already took everything

    // Member depths are NOT reset here: they decay as shards resolve,
    // so the estimates price this batch's pressure on top of whatever
    // is still in flight from earlier intakes.

    // Pop everything in priority order, coalescing identical
    // (workload, binding) requests into work items.
    std::vector<WorkItem *> fresh;
    std::unordered_map<WorkKey, WorkItem *, WorkKeyHash> open;
    while (!queue_.empty()) {
        JobQueue::Entry e = queue_.pop();
        WorkKey key{e.request.workload, e.request.params};
        auto liveIt = open_.find(key);
        if (liveIt != open_.end() && !liveIt->second->finished) {
            // Streaming rider join: identical work is already open
            // from an earlier intake. Before dispatch the rider can
            // still grow the budget; after dispatch it may only ride
            // a budget no larger than what is executing (the cutoff).
            WorkItem *item = liveIt->second;
            if (!item->dispatched || e.request.shots <= item->shots) {
                if (!item->dispatched) {
                    item->t0 = std::min(item->t0, e.request.submitH);
                    item->shots = std::max(item->shots, e.request.shots);
                }
                item->tLast = std::max(item->tLast, e.request.submitH);
                if (sink_) {
                    replay::EventRecord r;
                    r.kind = replay::EventKind::RiderJoin;
                    r.tH = loop_.now();
                    r.jobId = e.jobId;
                    r.workUid = item->workUid;
                    r.shots = e.request.shots;
                    sink_->record(r);
                }
                ++counters_.ridersJoined;
                riderItem_[e.jobId] = item;
                item->riders.push_back(std::move(e));
                continue;
            }
            // Budget exceeds the executing item's: fall through and
            // open a fresh item for the larger request.
        }
        auto it = open.find(key);
        if (it == open.end()) {
            auto owned = std::make_unique<WorkItem>(options_.aggregation);
            WorkItem *item = owned.get();
            item->key = std::move(key);
            item->workUid = nextWorkId_++;
            item->t0 = e.request.submitH;
            item->tLast = e.request.submitH;
            item->shots = e.request.shots;
            riderItem_[e.jobId] = item;
            item->riders.push_back(std::move(e));
            fresh.push_back(item);
            open.emplace(item->key, item);
            active_.push_back(std::move(owned));
        } else {
            WorkItem *item = it->second;
            item->t0 = std::min(item->t0, e.request.submitH);
            item->tLast = std::max(item->tLast, e.request.submitH);
            item->shots = std::max(item->shots, e.request.shots);
            if (sink_) {
                replay::EventRecord r;
                r.kind = replay::EventKind::Coalesce;
                r.tH = loop_.now();
                r.jobId = e.jobId;
                r.workUid = item->workUid;
                sink_->record(r);
            }
            riderItem_[e.jobId] = item;
            item->riders.push_back(std::move(e));
            // jobsCoalesced is counted at finalize, once the item
            // knows whether it executed or served from cache — every
            // rider lands in exactly one counter category.
        }
    }

    ins_.queueDepth->set(static_cast<double>(queue_.size()));
    ins_.activeItems->add(static_cast<double>(fresh.size()));

    // Cache lookups and shard planning in pop order. All planning
    // happens before any execution so every item of one intake probes
    // the same plan-cache state (and the batch stays bit-identical to
    // the synchronous drain this event decomposition replaced).
    for (WorkItem *item : fresh) {
        if (const CachedResult *hit =
                cache_.lookup(item->key, item->tLast, item->shots)) {
            item->fromCache = true;
            item->cached = *hit;
            counters_.cacheHits += item->riders.size();
            if (sink_) {
                replay::EventRecord r;
                r.kind = replay::EventKind::CacheHit;
                r.tH = std::max(item->tLast, loop_.now());
                r.workUid = item->workUid;
                r.storedAtH = hit->storedAtH;
                r.servedShots = hit->shots;
                r.shots = item->shots;
                r.energy = hit->energy;
                r.riders = static_cast<int>(item->riders.size());
                sink_->record(r);
            }
            continue;
        }
        ++counters_.workItems;
        ins_.queueWaitH->observe(std::max(0.0, loop_.now() - item->t0));
        if (planShards(*item, item->shots, item->t0))
            item->dispatched = true;
    }

    // Launch: cache hits and unserveable items finalize by event
    // (scheduleAt clamps past timestamps to now); every executing
    // item's shards join ONE combined fan-out — batch-wide, like the
    // round the synchronous drain ran — and then resolve one
    // completion event per shard.
    std::vector<ShardRef> batch;
    for (WorkItem *item : fresh) {
        if (item->fromCache) {
            loop_.scheduleAt(item->tLast,
                             [this, item] { finalizeItem(*item); });
        } else if (item->shards.empty()) {
            if (options_.retryUnplannableH > 0.0) {
                // No member can take the work right now (all failed
                // or outside their membership window): park it and
                // retry — a join or restore may make it plannable.
                open_[item->key] = item;
                parkItem(item, item->t0);
            } else {
                loop_.scheduleAt(item->t0,
                                 [this, item] { finalizeItem(*item); });
            }
        } else {
            open_[item->key] = item;
            for (std::size_t i = 0; i < item->shards.size(); ++i)
                batch.push_back(ShardRef{item, i});
        }
    }
    executeShards(batch);
    for (WorkItem *item : fresh)
        if (!item->fromCache && !item->shards.empty())
            scheduleShardEvents(*item, 0);
}

// ---------------------------------------------------------------------------
// Shard execution and per-shard completion events
// ---------------------------------------------------------------------------

void
ServiceNode::executeShards(const std::vector<ShardRef> &batch)
{
    // One fan-out for the whole batch, possibly spanning many work
    // items: each shard owns an RNG stream forked from (work uid,
    // shard seq) — a pure function of ids — and writes only its own
    // slot, so any parallelJobs chunking yields bit-identical
    // results while the pool stays saturated across items.
    if (batch.empty())
        return;
    TaskPool &exec = exec_ ? *exec_ : TaskPool::shared();
    if (options_.batchedSweep) {
        executeShardsBatched(batch, exec);
        return;
    }
    exec.parallelJobs(batch.size(), [&](uint64_t b, uint64_t e) {
        for (uint64_t bi = b; bi < e; ++bi) {
            WorkItem &item = *batch[bi].item;
            Shard &s = item.shards[batch[bi].shard];
            const Workload &w = *workloads_[item.key.workload];
            Member &m = members_[static_cast<std::size_t>(s.member)];
            Rng rng = rootRng_.fork(item.workUid)
                          .fork(static_cast<uint64_t>(s.seq));
            const int groups =
                static_cast<int>(w.compiled[s.member].size());
            double latS = m.backend->queue().jobLatencyS(
                s.startH, w.durUs[s.member], s.shots, groups, rng,
                s.depthAtPlan);
            double completeH = s.startH + latS / 3600.0;
            s.result.member = s.member;
            s.result.shots = s.shots;
            s.result.pCorrect = s.pCorrect;
            if (!m.aliveAt(completeH)) {
                // The member died between planning and completion:
                // the shard never returns and the caller times out at
                // its expected completion.
                s.result.failed = true;
                s.detectH = std::max(completeH, s.startH);
                continue;
            }
            EnergyEstimate est = w.estimator.estimate(
                *m.backend, w.compiled[s.member], item.key.params,
                s.shots, completeH, rng, options_.shotMode,
                options_.readoutMitigation, &exec);
            s.result.energy = est.energy;
            s.result.variance = est.variance;
            s.result.completeH = completeH;
            s.result.circuitsRun = est.circuitsRun;
            s.result.failed = false;
        }
    });
}

void
ServiceNode::executeShardsBatched(const std::vector<ShardRef> &batch,
                                  TaskPool &exec)
{
    // Shards of one work item run the same compiled workload, so their
    // members can advance together through one batched density-matrix
    // sweep. Latency draws and liveness checks come first, from each
    // shard's own (work uid, shard seq) fork, in the exact order the
    // sequential path uses — the sweep only replaces the per-shard
    // estimate() calls, so outcomes and rng streams are bit-identical.
    std::size_t i = 0;
    while (i < batch.size()) {
        WorkItem &item = *batch[i].item;
        std::size_t j = i;
        while (j < batch.size() && batch[j].item == &item)
            ++j;
        const Workload &w = *workloads_[item.key.workload];
        const std::size_t n = j - i;
        std::vector<Rng> rngs;
        rngs.reserve(n);
        std::vector<double> completeHs(n, 0.0);
        std::vector<std::size_t> alive;
        for (std::size_t k = 0; k < n; ++k) {
            Shard &s = item.shards[batch[i + k].shard];
            Member &m = members_[static_cast<std::size_t>(s.member)];
            rngs.push_back(rootRng_.fork(item.workUid)
                               .fork(static_cast<uint64_t>(s.seq)));
            const int groups =
                static_cast<int>(w.compiled[s.member].size());
            double latS = m.backend->queue().jobLatencyS(
                s.startH, w.durUs[s.member], s.shots, groups, rngs[k],
                s.depthAtPlan);
            completeHs[k] = s.startH + latS / 3600.0;
            s.result.member = s.member;
            s.result.shots = s.shots;
            s.result.pCorrect = s.pCorrect;
            if (!m.aliveAt(completeHs[k])) {
                s.result.failed = true;
                s.detectH = std::max(completeHs[k], s.startH);
                continue;
            }
            alive.push_back(k);
        }
        if (ins_.batchMembers)
            ins_.batchMembers->observe(
                static_cast<double>(alive.size()));
        if (alive.size() >= 2) {
            std::vector<ExpectationEstimator::EnsembleLane> lanes(
                alive.size());
            for (std::size_t a = 0; a < alive.size(); ++a) {
                const std::size_t k = alive[a];
                Shard &s = item.shards[batch[i + k].shard];
                lanes[a].backend = members_[static_cast<std::size_t>(
                                                s.member)]
                                       .backend.get();
                lanes[a].compiled = &w.compiled[s.member];
                lanes[a].shots = s.shots;
                lanes[a].atTimeH = completeHs[k];
                lanes[a].rng = &rngs[k];
            }
            std::vector<EnergyEstimate> ests =
                w.estimator.estimateEnsemble(
                    lanes, item.key.params, options_.shotMode,
                    options_.readoutMitigation, &exec);
            for (std::size_t a = 0; a < alive.size(); ++a) {
                const std::size_t k = alive[a];
                Shard &s = item.shards[batch[i + k].shard];
                s.result.energy = ests[a].energy;
                s.result.variance = ests[a].variance;
                s.result.completeH = completeHs[k];
                s.result.circuitsRun = ests[a].circuitsRun;
                s.result.failed = false;
            }
        } else {
            for (std::size_t k : alive) {
                Shard &s = item.shards[batch[i + k].shard];
                Member &m =
                    members_[static_cast<std::size_t>(s.member)];
                EnergyEstimate est = w.estimator.estimate(
                    *m.backend, w.compiled[s.member], item.key.params,
                    s.shots, completeHs[k], rngs[k], options_.shotMode,
                    options_.readoutMitigation, &exec);
                s.result.energy = est.energy;
                s.result.variance = est.variance;
                s.result.completeH = completeHs[k];
                s.result.circuitsRun = est.circuitsRun;
                s.result.failed = false;
            }
        }
        i = j;
    }
}

void
ServiceNode::scheduleShardEvents(WorkItem &item, std::size_t firstShard)
{
    for (std::size_t i = firstShard; i < item.shards.size(); ++i) {
        WorkItem *ip = &item;
        const Shard &s = item.shards[i];
        if (s.result.failed) {
            // The failure surfaces when the caller times out at the
            // shard's expected completion.
            loop_.scheduleAt(s.detectH, [this, ip, i] {
                Shard &sh = ip->shards[i];
                sh.resolved = true;
                // A deadline shed may have finalized the item while
                // this event was in flight: the late failure still
                // decays the member's depth, but no longer feeds the
                // requeue machinery.
                const bool late = ip->finished;
                if (!late) {
                    ip->pendingFailedShots += sh.shots;
                    ip->pendingDetectH =
                        std::max(ip->pendingDetectH, sh.detectH);
                }
                resolveMemberDepth(sh.member);
                if (sink_) {
                    replay::EventRecord r;
                    r.kind = replay::EventKind::ShardFail;
                    r.tH = loop_.now();
                    r.workUid = ip->workUid;
                    r.member = sh.member;
                    r.shots = sh.shots;
                    r.seq = sh.seq;
                    r.late = late;
                    sink_->record(r);
                }
                onShardResolved(*ip);
            });
        } else {
            // Per-member completion: each shard finishes on its own
            // schedule — there is no round barrier.
            loop_.scheduleAt(s.result.completeH, [this, ip, i] {
                Shard &sh = ip->shards[i];
                sh.resolved = true;
                // Late completions (after a deadline shed) executed
                // real shots on real hardware: the counters see them
                // even though the aggregate no longer can.
                const bool late = ip->finished;
                ++counters_.shardsExecuted;
                counters_.shotsExecuted +=
                    static_cast<uint64_t>(sh.shots);
                counters_.circuitsExecuted +=
                    static_cast<uint64_t>(sh.result.circuitsRun);
                memberShots_[static_cast<std::size_t>(sh.member)] +=
                    static_cast<uint64_t>(sh.shots);
                resolveMemberDepth(sh.member);
                if (sink_) {
                    replay::EventRecord r;
                    r.kind = replay::EventKind::ShardDone;
                    r.tH = loop_.now();
                    r.workUid = ip->workUid;
                    r.member = sh.member;
                    r.shots = sh.shots;
                    r.seq = sh.seq;
                    r.energy = sh.result.energy;
                    r.variance = sh.result.variance;
                    r.pCorrect = sh.result.pCorrect;
                    r.circuits = sh.result.circuitsRun;
                    r.doneH = sh.result.completeH;
                    r.late = late;
                    sink_->record(r);
                }
                onShardResolved(*ip);
            });
        }
    }
}

void
ServiceNode::resolveMemberDepth(int member)
{
    // One planned shard resolved: the member's live backlog decays.
    int &depth = members_[static_cast<std::size_t>(member)].depth;
    if (depth > 0)
        --depth;
    ins_.inflightShards->add(-1.0);
}

void
ServiceNode::onShardResolved(WorkItem &item)
{
    if (item.outstanding > 0)
        --item.outstanding;
    if (item.finished || item.outstanding > 0)
        return; // late resolution after a shed, or more in flight
    if (item.pendingFailedShots > 0)
        requeueFailures(item);
    else
        finalizeItem(item);
}

// ---------------------------------------------------------------------------
// Requeue event: replan lost shots onto survivors
// ---------------------------------------------------------------------------

void
ServiceNode::requeueFailures(WorkItem &item)
{
    if (item.requeueRound >= options_.maxRequeueRounds) {
        warn("ServiceNode: requeue rounds exhausted for work item " +
             std::to_string(item.workUid) + "; " +
             std::to_string(item.pendingFailedShots) +
             " shots lost (outcome marked degraded)");
        journalReplan(item, item.pendingFailedShots, 0, true,
                      item.pendingDetectH);
        finalizeItem(item);
        return;
    }
    const int failedShots = item.pendingFailedShots;
    const double atH = item.pendingDetectH;
    item.pendingFailedShots = 0;
    item.pendingDetectH = 0.0;
    const std::size_t firstNew = item.shards.size();
    if (!planShards(item, failedShots, atH)) {
        warn("ServiceNode: no surviving member for requeue of work "
             "item " +
             std::to_string(item.workUid));
        journalReplan(item, failedShots, 0, true, atH);
        finalizeItem(item);
        return;
    }
    const std::size_t planned = item.shards.size() - firstNew;
    item.requeues += static_cast<int>(planned);
    counters_.shardsRequeued += static_cast<uint64_t>(planned);
    ++item.requeueRound;
    journalReplan(item, failedShots, static_cast<int>(planned), false,
                  atH);
    std::vector<ShardRef> batch;
    batch.reserve(planned);
    for (std::size_t i = firstNew; i < item.shards.size(); ++i)
        batch.push_back(ShardRef{&item, i});
    executeShards(batch);
    scheduleShardEvents(item, firstNew);
}

void
ServiceNode::journalReplan(const WorkItem &item, int failedShots,
                           int planned, bool exhausted, double atH)
{
    if (!sink_)
        return;
    replay::EventRecord r;
    r.kind = replay::EventKind::Replan;
    r.tH = atH;
    r.workUid = item.workUid;
    r.round = item.requeueRound;
    r.shots = failedShots;
    r.planned = planned;
    r.exhausted = exhausted;
    sink_->record(r);
}

// ---------------------------------------------------------------------------
// Deadline events: graceful shedding at the SLO
// ---------------------------------------------------------------------------

void
ServiceNode::journalDeadlineShed(uint64_t jobId, uint64_t uid,
                                 int completedShots, int shedShots,
                                 double deadlineH, double atH)
{
    if (!sink_)
        return;
    replay::EventRecord r;
    r.kind = replay::EventKind::DeadlineShed;
    r.tH = atH;
    r.jobId = jobId;
    r.workUid = uid;
    r.shots = completedShots;
    r.shedShots = shedShots;
    r.deadlineH = deadlineH;
    sink_->record(r);
}

void
ServiceNode::shedItem(WorkItem &item, uint64_t trigJobId)
{
    double deadH = 0.0;
    for (const JobQueue::Entry &rd : item.riders)
        if (rd.jobId == trigJobId)
            deadH = rd.request.deadlineH;
    item.shed = true;
    item.shedAtH = loop_.now();
    if (item.parked) {
        // Nothing dispatched: cancel the pending retry and shed the
        // whole budget.
        loop_.cancel(item.retryEventId);
        item.parked = false;
        item.shedShots = item.shots;
    } else {
        int completed = 0;
        for (const Shard &s : item.shards)
            if (s.resolved && !s.result.failed)
                completed += s.shots;
        item.shedShots = std::max(0, item.shots - completed);
        item.pendingFailedShots = 0; // lost shots are shed, not replanned
    }
    // Equi-weighted fallback for the partial answer: with the budget
    // truncated mid-flight, the unweighted mean over completed shards
    // is the better-conditioned estimate (the equi-ensemble argument).
    item.agg = Aggregator(AggregationMode::EquiWeighted);
    ++counters_.deadlineSheds;
    counters_.shotsShed += static_cast<uint64_t>(item.shedShots);
    journalDeadlineShed(trigJobId, item.workUid,
                        item.shots - item.shedShots, item.shedShots,
                        deadH, item.shedAtH);
    finalizeItem(item);
}

void
ServiceNode::onDeadline(uint64_t jobId)
{
    deadlineEvents_.erase(jobId);
    JobQueue::Entry entry;
    if (queue_.erase(jobId, &entry)) {
        // The deadline beat the job's own intake event (defensive:
        // intake is scheduled at the submit hour, strictly before any
        // feasible deadline). Shed the entire budget, zero completed.
        WorkKey key{entry.request.workload, entry.request.params};
        const double deadH = entry.request.deadlineH;
        auto owned =
            std::make_unique<WorkItem>(AggregationMode::EquiWeighted);
        WorkItem *item = owned.get();
        item->key = std::move(key);
        item->workUid = nextWorkId_++;
        item->t0 = entry.request.submitH;
        item->tLast = entry.request.submitH;
        item->shots = entry.request.shots;
        item->shed = true;
        item->shedAtH = loop_.now();
        item->shedShots = item->shots;
        item->riders.push_back(std::move(entry));
        active_.push_back(std::move(owned));
        ++counters_.deadlineSheds;
        counters_.shotsShed += static_cast<uint64_t>(item->shedShots);
        journalDeadlineShed(jobId, item->workUid, 0, item->shedShots,
                            deadH, item->shedAtH);
        finalizeItem(*item);
        return;
    }
    auto it = riderItem_.find(jobId);
    if (it == riderItem_.end())
        return; // already finalized: the deadline was met
    WorkItem *item = it->second;
    if (item->finished || item->fromCache || item->shed)
        return; // finalize event already queued, or shed by a co-rider
    shedItem(*item, jobId);
}

// ---------------------------------------------------------------------------
// Park-and-retry: unplannable items wait for membership to recover
// ---------------------------------------------------------------------------

void
ServiceNode::parkItem(WorkItem *item, double atH)
{
    item->parked = true;
    item->retryEventId =
        loop_.scheduleAt(atH + options_.retryUnplannableH,
                         [this, item] { retryParked(item); });
}

void
ServiceNode::retryParked(WorkItem *item)
{
    if (item->finished || !item->parked)
        return; // shed or already retried by a membership event
    item->parked = false;
    const double atH = loop_.now();
    const std::size_t firstNew = item->shards.size();
    if (planShards(*item, item->shots, atH)) {
        item->dispatched = true;
        std::vector<ShardRef> batch;
        batch.reserve(item->shards.size() - firstNew);
        for (std::size_t i = firstNew; i < item->shards.size(); ++i)
            batch.push_back(ShardRef{item, i});
        executeShards(batch);
        scheduleShardEvents(*item, firstNew);
        return;
    }
    if (++item->parkRounds >= options_.maxRequeueRounds) {
        warn("ServiceNode: park rounds exhausted for work item " +
             std::to_string(item->workUid) +
             "; finalizing with no shots (outcome marked degraded)");
        journalReplan(*item, item->shots, 0, true, atH);
        finalizeItem(*item);
        return;
    }
    parkItem(item, atH);
}

void
ServiceNode::retryParkedItems()
{
    // Index loop: retryParked schedules events and may finalize, but
    // never appends to active_ — stay defensive anyway.
    for (std::size_t i = 0; i < active_.size(); ++i) {
        WorkItem *item = active_[i].get();
        if (!item->finished && item->parked) {
            loop_.cancel(item->retryEventId);
            retryParked(item);
        }
    }
}

// ---------------------------------------------------------------------------
// Finalize event: aggregate in shard-sequence order, complete riders
// ---------------------------------------------------------------------------

void
ServiceNode::finalizeItem(WorkItem &item)
{
    double energy, variance, pc, completeH;
    int shotsExec, shardsExec, circuits, primary;
    if (item.fromCache) {
        energy = item.cached.energy;
        variance = item.cached.variance;
        pc = item.cached.pCorrect;
        completeH = item.t0;
        shotsExec = item.cached.shots;
        shardsExec = 0;
        circuits = 0;
        primary = -1;
    } else {
        // Shard results were buffered as their events fired; the
        // aggregate folds them in sequence order, so the combination
        // is independent of completion interleaving (and identical to
        // the synchronous drain's round order). On a shed only the
        // shards that resolved by the deadline can contribute.
        for (const Shard &s : item.shards)
            if (s.resolved)
                item.agg.add(s.result);
        energy = item.agg.energy();
        variance = item.agg.variance();
        pc = item.agg.pCorrect();
        completeH = item.shed ? item.shedAtH : item.agg.completeH();
        shotsExec = item.agg.shotsExecuted();
        shardsExec = item.agg.shardsExecuted();
        circuits = item.agg.circuitsRun();
        primary = item.agg.primaryMember();
        counters_.jobsCoalesced +=
            static_cast<uint64_t>(item.riders.size() - 1);
        if (!item.shed) {
            // A shed answer is partial by construction: caching it
            // would serve degraded results to future full-budget jobs.
            CachedResult cr;
            cr.energy = energy;
            cr.variance = variance;
            cr.pCorrect = pc;
            cr.completeH = completeH;
            cr.shots = shotsExec;
            cache_.store(item.key, cr);
        }
    }
    bool first = true;
    for (const JobQueue::Entry &rider : item.riders) {
        JobOutcome o;
        o.jobId = rider.jobId;
        o.tenantId = rider.request.tenantId;
        o.workload = item.key.workload;
        o.energy = energy;
        o.variance = variance;
        o.pCorrect = pc;
        o.submitH = rider.request.submitH;
        o.completeH =
            item.fromCache ? rider.request.submitH : completeH;
        o.latencyH = std::max(0.0, o.completeH - rider.request.submitH);
        o.shotsExecuted = shotsExec;
        o.shardsExecuted = shardsExec;
        o.requeues = item.requeues;
        o.circuitsRun = circuits;
        o.primaryMember = primary;
        o.coalesced = !first && !item.fromCache;
        o.fromCache = item.fromCache;
        o.degraded =
            !item.fromCache && (shotsExec < item.shots || item.shed);
        o.deadlineH = rider.request.deadlineH;
        o.shedShots = item.shedShots;
        o.shed = item.shed;
        latency_.add(o.latencyH);
        latencyMoments_.add(o.latencyH);
        ins_.latencyH->observe(o.latencyH);
        // The rider's SLO resolves here, exactly once: met if the item
        // was not shed, shed otherwise. Cancel the pending deadline
        // event (a no-op for the event that triggered this shed).
        auto dit = deadlineEvents_.find(rider.jobId);
        if (dit != deadlineEvents_.end()) {
            loop_.cancel(dit->second);
            deadlineEvents_.erase(dit);
        }
        if (rider.request.deadlineH > 0.0 && !item.shed)
            ++counters_.deadlinesMet;
        riderItem_.erase(rider.jobId);
        if (sink_) {
            replay::EventRecord r;
            r.kind = replay::EventKind::Finalize;
            r.tH = loop_.now();
            r.jobId = o.jobId;
            r.workUid = item.workUid;
            r.tenant = o.tenantId;
            r.workload = o.workload;
            r.energy = o.energy;
            r.variance = o.variance;
            r.pCorrect = o.pCorrect;
            r.doneH = o.completeH;
            r.shots = o.shotsExecuted;
            r.shardsRun = o.shardsExecuted;
            r.circuits = o.circuitsRun;
            r.round = o.requeues;
            r.degraded = o.degraded;
            r.fromCache = o.fromCache;
            r.coalesced = o.coalesced;
            r.deadlineH = o.deadlineH;
            r.shedShots = o.shedShots;
            r.shed = o.shed;
            sink_->record(r);
        }
        completed_.push_back(std::move(o));
        first = false;
    }
    item.finished = true;
    auto oit = open_.find(item.key);
    if (oit != open_.end() && oit->second == &item)
        open_.erase(oit);
    ins_.activeItems->add(-1.0);
}

// ---------------------------------------------------------------------------
// Drain: run the loop until idle, collect outcomes
// ---------------------------------------------------------------------------

std::vector<JobOutcome>
ServiceNode::collectOutcomes()
{
    // Keep finished items whose late shard events are still pending:
    // those events hold raw pointers into active_.
    active_.erase(
        std::remove_if(active_.begin(), active_.end(),
                       [](const std::unique_ptr<WorkItem> &item) {
                           return item->finished &&
                                  item->outstanding == 0;
                       }),
        active_.end());

    std::vector<JobOutcome> outcomes = std::move(completed_);
    completed_.clear();
    std::sort(outcomes.begin(), outcomes.end(),
              [](const JobOutcome &a, const JobOutcome &b) {
                  return a.jobId < b.jobId;
              });
    return outcomes;
}

std::vector<JobOutcome>
ServiceNode::drain(TaskPool *pool)
{
    if (sink_) {
        replay::EventRecord r;
        r.kind = replay::EventKind::Drain;
        r.tH = loop_.now();
        // Full drains journal no horizon and stay byte-compatible
        // with version-1 journals.
        r.atH = std::numeric_limits<double>::infinity();
        sink_->record(r);
    }
    exec_ = pool ? pool : &TaskPool::shared();
    loop_.run();
    exec_ = nullptr;
    return collectOutcomes();
}

std::vector<JobOutcome>
ServiceNode::runUntil(double limitH, TaskPool *pool)
{
    if (sink_) {
        replay::EventRecord r;
        r.kind = replay::EventKind::Drain;
        r.tH = loop_.now();
        r.atH = limitH;
        sink_->record(r);
    }
    exec_ = pool ? pool : &TaskPool::shared();
    loop_.runUntil(limitH);
    exec_ = nullptr;
    return collectOutcomes();
}

void
ServiceNode::stop()
{
    loop_.requestStop();
}

// ---------------------------------------------------------------------------
// Threaded serving: MPMC intake drained by the node's own loop thread
// ---------------------------------------------------------------------------

bool
ServiceNode::pumpIntake()
{
    bool any = false;
    SubmitSlot *slot = nullptr;
    while (intake_.tryPop(slot)) {
        slot->ticket = submit(*slot->request);
        slot->done.store(true, std::memory_order_release);
        any = true;
    }
    return any;
}

void
ServiceNode::serveLoop()
{
    for (;;) {
        pumpIntake();
        const int cmd = serveCmd_.load(std::memory_order_acquire);
        if (cmd == kServeStop) {
            pumpIntake(); // nothing races: producers have quiesced
            break;
        }
        if (cmd == kServeDrain) {
            // Late slots pushed before the barrier still belong to
            // this drain's stimulus.
            pumpIntake();
            const double limitH = serveLimitH_;
            if (sink_) {
                replay::EventRecord r;
                r.kind = replay::EventKind::Drain;
                r.tH = loop_.now();
                r.atH = limitH;
                sink_->record(r);
            }
            exec_ = servePool_ ? servePool_ : &TaskPool::shared();
            if (std::isfinite(limitH))
                loop_.runUntil(limitH);
            else
                loop_.run();
            exec_ = nullptr;
            serveCmd_.store(kServeIdle, std::memory_order_release);
            continue;
        }
        std::this_thread::yield();
    }
}

void
ServiceNode::startServe(TaskPool *pool)
{
    if (serveActive_.load(std::memory_order_acquire))
        return;
    servePool_ = pool;
    serveCmd_.store(kServeIdle, std::memory_order_relaxed);
    serveActive_.store(true, std::memory_order_release);
    serveThread_ = std::thread([this] { serveLoop(); });
}

Ticket
ServiceNode::postSubmit(const JobRequest &request)
{
    if (!serving())
        return submit(request);
    SubmitSlot slot;
    slot.request = &request;
    while (!intake_.tryPush(&slot))
        std::this_thread::yield(); // ring full: wait out the pump
    while (!slot.done.load(std::memory_order_acquire))
        std::this_thread::yield();
    return slot.ticket;
}

void
ServiceNode::requestDrain(double limitH)
{
    if (!serving()) {
        // No serve thread: run the drain inline, leaving the outcomes
        // pending for collectCompleted() like the threaded path does.
        std::vector<JobOutcome> got = std::isfinite(limitH)
                                          ? runUntil(limitH, servePool_)
                                          : drain(servePool_);
        completed_.insert(completed_.end(), got.begin(), got.end());
        return;
    }
    serveLimitH_ = limitH;
    serveCmd_.store(kServeDrain, std::memory_order_release);
}

void
ServiceNode::awaitDrain()
{
    if (!serving())
        return;
    while (serveCmd_.load(std::memory_order_acquire) == kServeDrain)
        std::this_thread::yield();
}

std::vector<JobOutcome>
ServiceNode::collectCompleted()
{
    return collectOutcomes();
}

void
ServiceNode::stopServe()
{
    if (!serveActive_.load(std::memory_order_acquire))
        return;
    serveCmd_.store(kServeStop, std::memory_order_release);
    if (serveThread_.joinable())
        serveThread_.join();
    serveActive_.store(false, std::memory_order_release);
    serveCmd_.store(kServeIdle, std::memory_order_relaxed);
}

NodeLoad
ServiceNode::loadSnapshot() const
{
    NodeLoad load;
    load.queuedJobs = queue_.size();
    load.activeItems = active_.size();
    const double nowH = loop_.now();
    for (const Member &m : members_) {
        load.inflightShards += m.depth;
        if (!m.planEligibleAt(nowH))
            continue;
        ++load.aliveMembers;
    }
    for (const std::unique_ptr<Workload> &w : workloads_) {
        for (std::size_t i = 0; i < members_.size(); ++i) {
            const Member &m = members_[i];
            if (!m.planEligibleAt(nowH) || w->compiled[i].empty())
                continue;
            if (m.backend->planCacheContains(w->compiled[i][0]))
                ++load.warmKeys;
        }
    }
    return load;
}

} // namespace serve
} // namespace eqc
