/**
 * @file
 * Request coalescing for the serving layer.
 *
 * Popular workloads produce identical (workload, binding) requests
 * from many tenants — a VQA campaign's followers polling the same
 * parameters, or a QNN inference fleet all evaluating the production
 * binding. WorkKey identifies that unit of work; the ServiceNode
 * groups same-key jobs into a single work item (one execution per
 * ensemble shard, every rider gets the result), and the ResultCache
 * optionally extends the dedupe window across serving rounds: a key
 * re-requested within the TTL whose cached execution covered at least
 * the requested shot budget is answered without touching a QPU.
 *
 * Cache expiry is *clock-based*: entries are stamped with the serving
 * clock's time when stored, so a TTL means the same thing whether the
 * node replays on a VirtualClock or serves live on a SteadyClock —
 * and an entry can never be resurrected by a rider claiming an old
 * submission time after real time has moved on.
 */

#ifndef EQC_SERVE_COALESCER_H
#define EQC_SERVE_COALESCER_H

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/event_loop.h"
#include "common/rng.h"
#include "serve/service.h"

namespace eqc {
namespace serve {

/** Identity of one unit of serveable work. */
struct WorkKey
{
    WorkloadId workload = -1;
    std::vector<double> params;

    /**
     * Exact-binding identity: params compare *bitwise*, matching the
     * hash below. Value equality would break the unordered_map
     * contract at -0.0 vs 0.0 (equal values, different bits) and
     * make a NaN binding unfindable forever.
     */
    bool operator==(const WorkKey &o) const;
};

/** Bitwise FNV-style hash of a WorkKey (exact-binding identity). */
struct WorkKeyHash
{
    std::size_t operator()(const WorkKey &k) const;
};

/** One cached aggregated result. */
struct CachedResult
{
    double energy = 0.0;
    double variance = 0.0;
    double pCorrect = 0.0;
    /** Completion time of the execution that produced it. */
    double completeH = 0.0;
    /** Shot budget the cached execution covered. */
    int shots = 0;
    /**
     * Serving-clock hour the entry was stored (the stamp freshness is
     * judged against). Set by ResultCache::store; exposed so journal
     * records and invariant audits can verify TTL arithmetic.
     */
    double storedAtH = 0.0;
};

/**
 * TTL- and capacity-bounded cache of aggregated results, keyed by
 * WorkKey. A TTL of 0 disables lookups entirely (drift makes stale
 * answers wrong, so reuse is opt-in and short-lived by design);
 * eviction is oldest-store-first, and entries past the TTL on the
 * serving clock are purged on store.
 */
class ResultCache
{
  public:
    /**
     * @param clock serving clock entries are stamped/expired against;
     *        nullptr falls back to each entry's completion time (a
     *        clockless cache still expires, just on result times)
     * @param ttlH clock hours a cached result stays serveable
     * @param capacity entries held before evicting the oldest
     */
    explicit ResultCache(const Clock *clock = nullptr, double ttlH = 0.0,
                         std::size_t capacity = 256)
        : clock_(clock), ttlH_(ttlH), capacity_(capacity)
    {
    }

    /**
     * The cached result for @p key, if it is still fresh at @p freshAtH
     * and its execution covered at least @p shots; nullptr otherwise.
     * Freshness is judged against the entry's store stamp, and
     * @p freshAtH below the serving clock's now is clamped up to it —
     * a rider cannot time-travel the cache by claiming an old
     * submission hour.
     */
    const CachedResult *lookup(const WorkKey &key, double freshAtH,
                               int shots) const;

    /** Insert/refresh @p key (purges expired, evicts oldest if full). */
    void store(const WorkKey &key, const CachedResult &result);

    std::size_t size() const { return entries_.size(); }
    double ttlH() const { return ttlH_; }

  private:
    struct Entry
    {
        CachedResult result;
        /** Serving-clock hour the entry was stored. */
        double storedAtH = 0.0;
    };

    double nowH() const { return clock_ ? clock_->nowH() : 0.0; }

    const Clock *clock_;
    double ttlH_;
    std::size_t capacity_;
    std::unordered_map<WorkKey, Entry, WorkKeyHash> entries_;
};

} // namespace serve
} // namespace eqc

#endif // EQC_SERVE_COALESCER_H
