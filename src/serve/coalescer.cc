#include "serve/coalescer.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace eqc {
namespace serve {

bool
WorkKey::operator==(const WorkKey &o) const
{
    if (workload != o.workload || params.size() != o.params.size())
        return false;
    return params.empty() ||
           std::memcmp(params.data(), o.params.data(),
                       params.size() * sizeof(double)) == 0;
}

std::size_t
WorkKeyHash::operator()(const WorkKey &k) const
{
    uint64_t h = splitmix64(static_cast<uint64_t>(k.workload) + 1);
    for (double p : k.params) {
        uint64_t bits;
        std::memcpy(&bits, &p, sizeof(bits));
        h = splitmix64(h ^ bits);
    }
    return static_cast<std::size_t>(h);
}

const CachedResult *
ResultCache::lookup(const WorkKey &key, double freshAtH, int shots) const
{
    if (ttlH_ <= 0.0)
        return nullptr;
    auto it = entries_.find(key);
    if (it == entries_.end())
        return nullptr;
    const Entry &e = it->second;
    const double atH = std::max(freshAtH, nowH());
    if (atH - e.storedAtH > ttlH_ || e.result.shots < shots)
        return nullptr;
    return &e.result;
}

void
ResultCache::store(const WorkKey &key, const CachedResult &result)
{
    if (ttlH_ <= 0.0 || capacity_ == 0)
        return; // disabled cache: don't accumulate unservable entries

    Entry entry;
    entry.result = result;
    entry.storedAtH = clock_ ? clock_->nowH() : result.completeH;
    entry.result.storedAtH = entry.storedAtH;

    auto it = entries_.find(key);
    if (it != entries_.end()) {
        it->second = entry;
        return;
    }

    // Housekeeping on the store path (lookups stay read-only): drop
    // everything the clock has already expired, then evict the oldest
    // store if the cache is still full.
    const double cutoffH = std::max(nowH(), entry.storedAtH) - ttlH_;
    for (auto jt = entries_.begin(); jt != entries_.end();) {
        if (jt->second.storedAtH < cutoffH)
            jt = entries_.erase(jt);
        else
            ++jt;
    }
    if (entries_.size() >= capacity_) {
        auto oldest = entries_.begin();
        for (auto jt = entries_.begin(); jt != entries_.end(); ++jt)
            if (jt->second.storedAtH < oldest->second.storedAtH)
                oldest = jt;
        entries_.erase(oldest);
    }
    entries_.emplace(key, std::move(entry));
}

} // namespace serve
} // namespace eqc
