#include "serve/coalescer.h"

#include <cstring>

namespace eqc {
namespace serve {

bool
WorkKey::operator==(const WorkKey &o) const
{
    if (workload != o.workload || params.size() != o.params.size())
        return false;
    return params.empty() ||
           std::memcmp(params.data(), o.params.data(),
                       params.size() * sizeof(double)) == 0;
}

std::size_t
WorkKeyHash::operator()(const WorkKey &k) const
{
    uint64_t h = splitmix64(static_cast<uint64_t>(k.workload) + 1);
    for (double p : k.params) {
        uint64_t bits;
        std::memcpy(&bits, &p, sizeof(bits));
        h = splitmix64(h ^ bits);
    }
    return static_cast<std::size_t>(h);
}

const CachedResult *
ResultCache::lookup(const WorkKey &key, double nowH, int shots) const
{
    if (ttlH_ <= 0.0)
        return nullptr;
    auto it = entries_.find(key);
    if (it == entries_.end())
        return nullptr;
    const CachedResult &r = it->second;
    if (nowH - r.completeH > ttlH_ || r.shots < shots)
        return nullptr;
    return &r;
}

void
ResultCache::store(const WorkKey &key, const CachedResult &result)
{
    if (ttlH_ <= 0.0 || capacity_ == 0)
        return; // disabled cache: don't accumulate unservable entries
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        it->second = result;
        return;
    }
    if (entries_.size() >= capacity_) {
        auto oldest = entries_.begin();
        for (auto jt = entries_.begin(); jt != entries_.end(); ++jt)
            if (jt->second.completeH < oldest->second.completeH)
                oldest = jt;
        entries_.erase(oldest);
    }
    entries_.emplace(key, result);
}

} // namespace serve
} // namespace eqc
