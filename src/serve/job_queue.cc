#include "serve/job_queue.h"

#include <algorithm>

namespace eqc {
namespace serve {

namespace {

/** true when a should pop *after* b (heap "less-than"). */
bool
popsAfter(const JobQueue::Entry &a, const JobQueue::Entry &b)
{
    if (a.request.priority != b.request.priority)
        return a.request.priority < b.request.priority;
    if (a.request.submitH != b.request.submitH)
        return a.request.submitH > b.request.submitH;
    return a.jobId > b.jobId;
}

} // namespace

AdmitStatus
JobQueue::admit(const JobRequest &request, uint64_t jobId)
{
    if (request.shots <= 0 || request.shots > policy_.maxShotsPerJob)
        return AdmitStatus::RejectedBadRequest;
    if (entries_.size() >= policy_.maxQueueDepth)
        return AdmitStatus::RejectedQueueFull;
    if (queuedFor(request.tenantId) >= policy_.maxQueuedPerTenant)
        return AdmitStatus::RejectedTenantQuota;

    entries_.push_back(Entry{request, jobId});
    std::push_heap(entries_.begin(), entries_.end(), popsAfter);
    ++queuedPerTenant_[request.tenantId];
    return AdmitStatus::Admitted;
}

JobQueue::Entry
JobQueue::pop()
{
    std::pop_heap(entries_.begin(), entries_.end(), popsAfter);
    Entry e = std::move(entries_.back());
    entries_.pop_back();
    auto it = queuedPerTenant_.find(e.request.tenantId);
    if (it != queuedPerTenant_.end() && --it->second <= 0)
        queuedPerTenant_.erase(it); // don't grow with tenant churn
    return e;
}

bool
JobQueue::erase(uint64_t jobId, Entry *removed)
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].jobId != jobId)
            continue;
        Entry e = std::move(entries_[i]);
        entries_[i] = std::move(entries_.back());
        entries_.pop_back();
        std::make_heap(entries_.begin(), entries_.end(), popsAfter);
        auto it = queuedPerTenant_.find(e.request.tenantId);
        if (it != queuedPerTenant_.end() && --it->second <= 0)
            queuedPerTenant_.erase(it);
        if (removed)
            *removed = std::move(e);
        return true;
    }
    return false;
}

int
JobQueue::queuedFor(int tenantId) const
{
    auto it = queuedPerTenant_.find(tenantId);
    return it == queuedPerTenant_.end() ? 0 : it->second;
}

} // namespace serve
} // namespace eqc
