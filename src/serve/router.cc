#include "serve/router.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "common/task_pool.h"
#include "obs/exposition.h"
#include "replay/journal.h"
#include "serve/coalescer.h"

namespace eqc {
namespace serve {

// ---------------------------------------------------------------------------
// HashRing
// ---------------------------------------------------------------------------

uint64_t
HashRing::pointFor(int node, int replica)
{
    // Two mix rounds decorrelate the (node, replica) lattice; a
    // single finalizer round leaves low-replica points clustered.
    const uint64_t a =
        splitmix64(static_cast<uint64_t>(node) + 0x632BE59BD9B4E019ull);
    return splitmix64(a ^ (static_cast<uint64_t>(replica) *
                           0x9E3779B97F4A7C15ull));
}

void
HashRing::addNode(int node, int virtualNodes)
{
    points_.reserve(points_.size() +
                    static_cast<std::size_t>(virtualNodes));
    for (int r = 0; r < virtualNodes; ++r)
        points_.emplace_back(pointFor(node, r), node);
    std::sort(points_.begin(), points_.end());
}

void
HashRing::removeNode(int node)
{
    points_.erase(std::remove_if(points_.begin(), points_.end(),
                                 [node](const auto &p) {
                                     return p.second == node;
                                 }),
                  points_.end());
}

int
HashRing::owner(uint64_t keyHash) const
{
    if (points_.empty())
        return -1;
    auto it = std::lower_bound(
        points_.begin(), points_.end(),
        std::make_pair(keyHash, std::numeric_limits<int>::min()));
    if (it == points_.end())
        it = points_.begin(); // wrap: the ring is circular
    return it->second;
}

std::vector<int>
HashRing::successors(uint64_t keyHash, std::size_t count) const
{
    std::vector<int> out;
    if (points_.empty() || count == 0)
        return out;
    auto it = std::lower_bound(
        points_.begin(), points_.end(),
        std::make_pair(keyHash, std::numeric_limits<int>::min()));
    if (it == points_.end())
        it = points_.begin();
    const int home = it->second;
    std::vector<int> seen{home};
    for (std::size_t step = 0;
         step < points_.size() && out.size() < count; ++step) {
        ++it;
        if (it == points_.end())
            it = points_.begin();
        const int n = it->second;
        if (std::find(seen.begin(), seen.end(), n) == seen.end()) {
            seen.push_back(n);
            out.push_back(n);
        }
    }
    return out;
}

// ---------------------------------------------------------------------------
// Stamping journal wrapper
// ---------------------------------------------------------------------------

/**
 * Wraps the router's sink for one node: every record the node
 * publishes is re-published with the node index stamped on, and —
 * while a routed submission is in flight — the routed-request uid is
 * stamped onto its Admit/Reject verdict. Keeps multi-node journaling
 * out of ServiceNode entirely.
 */
class Router::StampSink final : public replay::JournalSink
{
  public:
    replay::JournalSink *inner = nullptr;
    int node = 0;
    uint64_t pendingRuid = 0;

    void
    record(const replay::EventRecord &r) override
    {
        if (!inner)
            return;
        replay::EventRecord c = r;
        c.node = node;
        if (pendingRuid != 0 &&
            (c.kind == replay::EventKind::Admit ||
             c.kind == replay::EventKind::Reject))
            c.ruid = pendingRuid;
        inner->record(c);
    }
};

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

Router::TierCounters
Router::makeCounters(obs::MetricsRegistry &m)
{
    return TierCounters{
        *m.counter("eqc_router_routed_total",
                   "Requests routed (one per Router::submit)"),
        *m.counter("eqc_router_forwards_total",
                   "Overflow forward hops attempted"),
        *m.counter("eqc_router_forward_admits_total",
                   "Requests a forward target admitted after home "
                   "rejected"),
        *m.counter("eqc_router_rejected_everywhere_total",
                   "Requests rejected by home and every successor"),
    };
}

Router::Router(RouterOptions options)
    : options_(options), counters_(makeCounters(metrics_))
{
}

Router::~Router()
{
    stopServe();
}

std::size_t
Router::addNode(std::vector<Device> devices, ServiceOptions options,
                Clock *clock)
{
    const std::size_t i = nodes_.size();
    // Disjoint id spans: node i's job ids and work uids start at
    // i * 2^32 + 1, so ids are globally unique across the federation
    // (and node 0 keeps the legacy single-node numbering).
    options.firstJobId = (static_cast<uint64_t>(i) << 32) + 1;
    options.firstWorkUid = (static_cast<uint64_t>(i) << 32) + 1;

    NodeSlot slot;
    slot.node = std::make_unique<ServiceNode>(std::move(devices),
                                              options, clock);
    slot.pool = std::make_unique<TaskPool>(1);
    slot.stamp = std::make_unique<StampSink>();
    slot.stamp->node = static_cast<int>(i);
    slot.stamp->inner = sink_;
    slot.loadScore = metrics_.gauge(
        "eqc_router_node_load_score",
        "Per-node load score steering overflow forwards",
        "node=\"" + std::to_string(i) + "\"");
    if (sink_)
        slot.node->setJournalSink(slot.stamp.get());
    nodes_.push_back(std::move(slot));
    ring_.addNode(static_cast<int>(i), options_.virtualNodes);
    return i;
}

WorkloadId
Router::registerWorkload(const QuantumCircuit &ansatz,
                         const PauliSum &observable)
{
    WorkloadId id = -1;
    for (NodeSlot &s : nodes_) {
        const WorkloadId got =
            s.node->registerWorkload(ansatz, observable);
        id = id < 0 ? got : id; // nodes register in lockstep
    }
    return id;
}

uint64_t
Router::keyHash(WorkloadId workload, const std::vector<double> &params)
{
    WorkKey key;
    key.workload = workload;
    key.params = params;
    // WorkKeyHash is a bitwise FNV over the binding; one splitmix64
    // round spreads it over the ring's full 64-bit keyspace.
    return splitmix64(static_cast<uint64_t>(WorkKeyHash{}(key)));
}

int
Router::homeNode(const JobRequest &request) const
{
    return ring_.owner(keyHash(request.workload, request.params));
}

bool
Router::threadedActive() const
{
    return options_.threadedDrain && sink_ == nullptr &&
           !nodes_.empty();
}

void
Router::ensureServing()
{
    if (!threadedActive())
        return;
    for (NodeSlot &s : nodes_)
        if (!s.node->serving())
            s.node->startServe(s.pool.get());
}

Ticket
Router::submitToNode(std::size_t n, const JobRequest &request,
                     uint64_t ruid)
{
    NodeSlot &s = nodes_[n];
    s.stamp->pendingRuid = ruid;
    // postSubmit hands off through the MPMC intake ring when the
    // node's serve thread runs, and is a plain inline submit()
    // otherwise — either way the verdict is the node's own.
    const Ticket t = s.node->postSubmit(request);
    s.stamp->pendingRuid = 0;
    return t;
}

Ticket
Router::submit(const JobRequest &request)
{
    if (nodes_.empty())
        return Ticket{}; // no fleet: RejectedBadRequest, no id
    ensureServing();

    const uint64_t ruid = nextRuid_++;
    // Every hop of one routed request shares a trace id (the ruid,
    // unless the tenant correlated explicitly). In-memory only: the
    // id never reaches journal bytes.
    JobRequest req = request;
    if (req.traceId == 0)
        req.traceId = ruid;
    const uint64_t kh = keyHash(req.workload, req.params);
    const int home = ring_.owner(kh);
    ++counters_.routed;

    if (sink_) {
        replay::EventRecord r;
        r.kind = replay::EventKind::Route;
        r.tH = std::max(nodes_[home].node->loop().now(),
                        req.submitH);
        r.tenant = req.tenantId;
        r.workload = req.workload;
        r.shots = req.shots;
        r.priority = req.priority;
        r.submitH = req.submitH;
        r.deadlineH = req.deadlineH;
        r.params = req.params;
        r.node = home;
        r.ruid = ruid;
        r.traceId = req.traceId;
        sink_->record(r);
    }

    Ticket verdict =
        submitToNode(static_cast<std::size_t>(home), req, ruid);
    if (verdict.admitted() || verdict.retryAfterS <= 0.0)
        return verdict; // admitted, or a rejection forwarding can't fix

    // Capacity overflow: try the key's ring successors, least-loaded
    // first. The stable sort keeps ring order among ties, so the
    // choice is deterministic.
    std::vector<int> cand = ring_.successors(
        kh, static_cast<std::size_t>(std::max(0, options_.forwardHops)));
    std::vector<double> score(cand.size());
    for (std::size_t i = 0; i < cand.size(); ++i) {
        NodeSlot &s = nodes_[static_cast<std::size_t>(cand[i])];
        score[i] = s.node->loadSnapshot().score();
        s.loadScore->set(score[i]);
    }
    std::vector<std::size_t> order(cand.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&score](std::size_t a, std::size_t b) {
                         return score[a] < score[b];
                     });

    int prev = home;
    for (std::size_t oi : order) {
        const int target = cand[oi];
        ++counters_.forwards;
        if (sink_) {
            replay::EventRecord r;
            r.kind = replay::EventKind::Forward;
            r.tH = std::max(
                nodes_[static_cast<std::size_t>(target)].node->loop()
                    .now(),
                req.submitH);
            r.fromNode = prev;
            r.retryAfterS = verdict.retryAfterS;
            r.node = target;
            r.ruid = ruid;
            r.traceId = req.traceId;
            sink_->record(r);
        }
        const Ticket t = submitToNode(static_cast<std::size_t>(target),
                                      req, ruid);
        if (t.admitted()) {
            ++counters_.forwardAdmits;
            return t;
        }
        if (t.retryAfterS <= 0.0)
            return t; // final rejection: stop forwarding
        verdict = t;
        prev = target;
    }
    ++counters_.rejectedEverywhere;
    return verdict;
}

std::vector<JobOutcome>
Router::drain()
{
    return runUntil(std::numeric_limits<double>::infinity());
}

std::vector<JobOutcome>
Router::runUntil(double limitH)
{
    std::vector<JobOutcome> all;
    if (threadedActive()) {
        ensureServing();
        // Barrier drain: every node runs its loop concurrently on its
        // own serve thread; the await is the barrier.
        for (NodeSlot &s : nodes_)
            s.node->requestDrain(limitH);
        for (NodeSlot &s : nodes_)
            s.node->awaitDrain();
        for (NodeSlot &s : nodes_) {
            std::vector<JobOutcome> got = s.node->collectCompleted();
            all.insert(all.end(), got.begin(), got.end());
        }
    } else {
        for (NodeSlot &s : nodes_) {
            std::vector<JobOutcome> got =
                std::isfinite(limitH)
                    ? s.node->runUntil(limitH, s.pool.get())
                    : s.node->drain(s.pool.get());
            all.insert(all.end(), got.begin(), got.end());
        }
    }
    // Node id-spans make job ids globally unique, so job-id order is
    // a total order — the same merge whichever mode produced it.
    std::sort(all.begin(), all.end(),
              [](const JobOutcome &a, const JobOutcome &b) {
                  return a.jobId < b.jobId;
              });
    for (NodeSlot &s : nodes_)
        s.loadScore->set(s.node->loadSnapshot().score());
    return all;
}

void
Router::stop()
{
    for (NodeSlot &s : nodes_)
        s.node->stop();
}

void
Router::stopServe()
{
    for (NodeSlot &s : nodes_)
        s.node->stopServe();
}

void
Router::setJournalSink(replay::JournalSink *sink)
{
    stopServe(); // journaled runs drive inline
    sink_ = sink;
    for (NodeSlot &s : nodes_) {
        s.stamp->inner = sink;
        s.node->setJournalSink(sink ? s.stamp.get() : nullptr);
    }
}

RouterCounters
Router::counters() const
{
    RouterCounters c;
    c.routed = counters_.routed.value();
    c.forwards = counters_.forwards.value();
    c.forwardAdmits = counters_.forwardAdmits.value();
    c.rejectedEverywhere = counters_.rejectedEverywhere.value();
    return c;
}

stats::Percentiles
Router::latencyStats() const
{
    stats::Percentiles merged(
        options_.latencyReservoir,
        splitmix64(options_.seed ^ 0x526F757465724Cull));
    for (const NodeSlot &s : nodes_)
        merged.merge(s.node->latencyStats());
    return merged;
}

obs::Snapshot
Router::metricsSnapshot() const
{
    std::vector<std::pair<std::string, obs::Snapshot>> parts;
    parts.reserve(nodes_.size() + 1);
    parts.emplace_back("", metrics_.snapshot());
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        parts.emplace_back("node=\"" + std::to_string(i) + "\"",
                           nodes_[i].node->metrics().snapshot());
    return obs::merge(parts);
}

ServiceCounters
Router::totals() const
{
    ServiceCounters t;
    for (const NodeSlot &s : nodes_) {
        const ServiceCounters &c = s.node->counters();
        t.jobsAdmitted += c.jobsAdmitted;
        t.jobsRejected += c.jobsRejected;
        t.rejectedQueueFull += c.rejectedQueueFull;
        t.rejectedTenantQuota += c.rejectedTenantQuota;
        t.rejectedBadRequest += c.rejectedBadRequest;
        t.rejectedDeadline += c.rejectedDeadline;
        t.jobsCoalesced += c.jobsCoalesced;
        t.cacheHits += c.cacheHits;
        t.workItems += c.workItems;
        t.shardsExecuted += c.shardsExecuted;
        t.shardsRequeued += c.shardsRequeued;
        t.shotsExecuted += c.shotsExecuted;
        t.circuitsExecuted += c.circuitsExecuted;
        t.deadlinesMet += c.deadlinesMet;
        t.deadlineSheds += c.deadlineSheds;
        t.shotsShed += c.shotsShed;
        t.ridersJoined += c.ridersJoined;
        t.memberJoins += c.memberJoins;
        t.memberLeaves += c.memberLeaves;
        t.supervisedRestores += c.supervisedRestores;
    }
    return t;
}

double
Router::cacheHitRate() const
{
    const ServiceCounters t = totals();
    return t.jobsAdmitted == 0
               ? 0.0
               : static_cast<double>(t.cacheHits) /
                     static_cast<double>(t.jobsAdmitted);
}

std::vector<uint64_t>
Router::nodeShotTotals() const
{
    std::vector<uint64_t> out;
    out.reserve(nodes_.size());
    for (const NodeSlot &s : nodes_) {
        uint64_t shots = 0;
        for (uint64_t m : s.node->memberShotCounts())
            shots += m;
        out.push_back(shots);
    }
    return out;
}

} // namespace serve
} // namespace eqc
