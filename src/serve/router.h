/**
 * @file
 * Router — the dispatch tier federating N ServiceNodes.
 *
 * The paper's EQC fronts its QPU fleet with a dispatch daemon: one
 * process that owns admission and placement for every backend, so a
 * workload's traffic lands on the same execution context run after
 * run. This header scales our single ServiceNode to that shape: a
 * Router owns N nodes and consistent-hashes each request's
 * (workload, binding) identity — the WorkKey — onto a virtual-node
 * hash ring. Same key, same home node, so request coalescing and the
 * ResultCache keep their hit rates per keyspace shard instead of
 * being diluted across the federation.
 *
 * Overflow does not queue at a hot node: a capacity rejection carries
 * the node's retry-after backpressure hint, and the Router forwards
 * the request to the key's ring successors (least-loaded first, up to
 * RouterOptions::forwardHops), journaling every hop. Bad-request and
 * deadline rejections are final — forwarding cannot fix those.
 *
 * Concurrency: with threadedDrain each node runs its own serve
 * thread, fed through a lock-free MPMC intake ring
 * (ServiceNode::postSubmit) and drained under a barrier
 * (requestDrain/awaitDrain on every node). Nodes are independent —
 * disjoint ensembles, disjoint job-id spans — so the barrier drain is
 * bit-identical to draining the nodes inline one after another, and
 * VirtualClock single-thread mode stays bit-deterministic for replay.
 * Journaled runs always drive inline (JournalSink::record is not
 * synchronized across nodes).
 */

#ifndef EQC_SERVE_ROUTER_H
#define EQC_SERVE_ROUTER_H

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "serve/service_node.h"

namespace eqc {
namespace serve {

/** Router configuration. */
struct RouterOptions
{
    /**
     * Virtual nodes per member on the hash ring. More replicas smooth
     * the keyspace split (64 keeps every node within a few tens of
     * percent of the mean share; see tests/test_router.cc).
     */
    int virtualNodes = 64;
    /**
     * Ring successors tried when the home node rejects with a
     * retry-after hint (capacity backpressure). 0 disables
     * forwarding.
     */
    int forwardHops = 2;
    /**
     * Drive every node on its own serve thread (MPMC intake + barrier
     * drain). Ignored while a journal sink is attached — journaled
     * runs drain inline, in node order.
     */
    bool threadedDrain = false;
    /** Reservoir of the router-level latency percentile estimator. */
    std::size_t latencyReservoir = 4096;
    /** Seed of the router's own stochastic streams (reservoirs). */
    uint64_t seed = 1;
};

/**
 * Monotone router-level counters (a point-in-time read of the
 * registry-backed tier counters; see Router::metrics()).
 */
struct RouterCounters
{
    /** Requests routed (one per Router::submit). */
    uint64_t routed = 0;
    /** Overflow forwards attempted (one per hop). */
    uint64_t forwards = 0;
    /** Requests admitted by a forward target after home rejected. */
    uint64_t forwardAdmits = 0;
    /** Requests rejected by home and every tried successor. */
    uint64_t rejectedEverywhere = 0;
};

/**
 * Consistent-hashing ring of integer node ids with virtual nodes.
 * Deterministic: ring points are splitmix64 mixes of (node, replica),
 * so every process builds the identical ring for the same membership.
 */
class HashRing
{
  public:
    /** Add @p node with @p virtualNodes ring points. */
    void addNode(int node, int virtualNodes);

    /** Remove every ring point of @p node. */
    void removeNode(int node);

    /** Owner of @p keyHash: first ring point clockwise (wrapping). */
    int owner(uint64_t keyHash) const;

    /**
     * Up to @p count distinct nodes after the owner, clockwise — the
     * overflow-forward candidates for @p keyHash.
     */
    std::vector<int> successors(uint64_t keyHash,
                                std::size_t count) const;

    bool empty() const { return points_.empty(); }
    std::size_t size() const { return points_.size(); }

    /** Ring point of (@p node, @p replica) — exposed for tests. */
    static uint64_t pointFor(int node, int replica);

  private:
    /** (point hash, node), sorted by point hash. */
    std::vector<std::pair<uint64_t, int>> points_;
};

/** Dispatch tier over N ServiceNodes (see file comment). */
class Router
{
  public:
    explicit Router(RouterOptions options = {});
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    /**
     * Add a node fronting @p devices. The router overrides the
     * node's firstJobId/firstWorkUid so node i's ids live in the
     * disjoint span [i * 2^32 + 1, ...) — journals and outcome
     * streams merge without ambiguity. Call before the first
     * submit(); the ring gains RouterOptions::virtualNodes points.
     * @return the new node's index
     */
    std::size_t addNode(std::vector<Device> devices,
                        ServiceOptions options,
                        Clock *clock = nullptr);

    /**
     * Register a workload on every node. Nodes assign ids in
     * registration order, so the returned id is valid fleet-wide.
     */
    WorkloadId registerWorkload(const QuantumCircuit &ansatz,
                                const PauliSum &observable);

    /**
     * Route @p request to its key's home node; on a capacity
     * rejection, forward to up to forwardHops ring successors in
     * ascending NodeLoad::score() order. The Ticket is the final
     * verdict (its jobId names the admitting node via the id span).
     */
    Ticket submit(const JobRequest &request);

    /** Drain every node to idle; outcomes merged in job-id order. */
    std::vector<JobOutcome> drain();

    /** Run every node until model hour @p limitH; merged outcomes. */
    std::vector<JobOutcome> runUntil(double limitH);

    /** Ask every node's running loop to return (thread-safe). */
    void stop();

    /** Stop every serve thread (idempotent; threadedDrain mode). */
    void stopServe();

    std::size_t numNodes() const { return nodes_.size(); }

    ServiceNode &node(std::size_t i) { return *nodes_[i].node; }
    const ServiceNode &node(std::size_t i) const
    {
        return *nodes_[i].node;
    }

    /** Ring owner of @p request's (workload, binding) key. */
    int homeNode(const JobRequest &request) const;

    /** Mixed 64-bit hash of a (workload, binding) routing key. */
    static uint64_t keyHash(WorkloadId workload,
                            const std::vector<double> &params);

    const HashRing &ring() const { return ring_; }

    /**
     * Attach a journal sink observing the whole federation: the
     * router publishes Route/Forward records and every node's
     * lifecycle records pass through a stamping wrapper that tags
     * them with the node index (and the routed-request uid on
     * Admit/Reject). Disables threaded drains while attached.
     */
    void setJournalSink(replay::JournalSink *sink);

    replay::JournalSink *journalSink() const { return sink_; }

    /** Thin reads off the router's metrics registry. */
    RouterCounters counters() const;

    /**
     * The router tier's own registry: route/forward/reject counters
     * plus one load-score gauge per node (labelled `node="i"`,
     * refreshed at forward-scoring time and after every drain).
     */
    obs::MetricsRegistry &metrics() { return metrics_; }
    const obs::MetricsRegistry &metrics() const { return metrics_; }

    /**
     * One fleet-wide scrape: the router registry plus every node's,
     * each node's samples labelled `node="i"`. Feed to
     * obs::toPrometheus / obs::toJson / obs::diff.
     */
    obs::Snapshot metricsSnapshot() const;

    /** Fleet-wide sums of every node's ServiceCounters. */
    ServiceCounters totals() const;

    /** Cache hits / admitted jobs across the fleet (0 when idle). */
    double cacheHitRate() const;

    /**
     * Router-level per-job latency percentiles: a deterministic
     * Percentiles::merge over every node's reservoir. Aggregating the
     * node estimators (instead of re-sampling each outcome at the
     * router) keeps fleet quantiles unbiased — no observation is
     * counted at two tiers.
     */
    stats::Percentiles latencyStats() const;

    /** Shots executed per node (placement telemetry). */
    std::vector<uint64_t> nodeShotTotals() const;

    const RouterOptions &options() const { return options_; }

  private:
    /** Journal wrapper stamping a node id onto every record. */
    class StampSink;

    /** Serve threads are live (threadedDrain and no sink). */
    bool threadedActive() const;

    /** Start every node's serve thread if threaded mode wants them. */
    void ensureServing();

    /** Submit on node @p n via the thread-safe intake path. */
    Ticket submitToNode(std::size_t n, const JobRequest &request,
                        uint64_t ruid);

    /** Registry-backed tier counters (RouterCounters mirrors these). */
    struct TierCounters
    {
        obs::Counter &routed;
        obs::Counter &forwards;
        obs::Counter &forwardAdmits;
        obs::Counter &rejectedEverywhere;
    };

    static TierCounters makeCounters(obs::MetricsRegistry &m);

    struct NodeSlot
    {
        std::unique_ptr<ServiceNode> node;
        /**
         * The node's own fan-out pool. TaskPool(1) runs shards inline
         * on whichever thread drains, so threaded scaling comes from
         * node-level concurrency, not nested pools fighting over
         * cores.
         */
        std::unique_ptr<TaskPool> pool;
        std::unique_ptr<StampSink> stamp;
        /** Load-score gauge in metrics_, labelled with the node id. */
        obs::Gauge *loadScore = nullptr;
    };

    RouterOptions options_;
    std::vector<NodeSlot> nodes_;
    HashRing ring_;
    replay::JournalSink *sink_ = nullptr;
    // Registry before counters_: the counter references point into it.
    obs::MetricsRegistry metrics_;
    TierCounters counters_;
    /** Next routed-request uid (journal correlation; starts at 1). */
    uint64_t nextRuid_ = 1;
};

} // namespace serve
} // namespace eqc

#endif // EQC_SERVE_ROUTER_H
