/**
 * @file
 * Quantum backend interface and the simulated QPU.
 *
 * SimulatedQpu is the substitution for a physical IBMQ device: it runs
 * the transpiled circuit on the density-matrix simulator with Kraus
 * noise derived from the device's *actual* (drifted) calibration at the
 * submission time, applies per-qubit readout confusion, and samples
 * shots. Client nodes, however, only ever see the *reported* calibration
 * — exactly the information asymmetry real EQC deployments face.
 */

#ifndef EQC_DEVICE_BACKEND_H
#define EQC_DEVICE_BACKEND_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "device/device.h"
#include "transpile/transpiler.h"

namespace eqc {

/** Result of one batch execution on a backend. */
struct JobResult
{
    /**
     * Outcome distribution over the compact circuit's qubits with
     * readout error applied (exact, before shot sampling).
     */
    std::vector<double> probabilities;
    /** Sampled counts per outcome (empty when sampling was disabled). */
    std::vector<uint64_t> counts;
    /** Shots requested. */
    int shots = 0;
    /** Wall-clock duration of one circuit execution (microseconds). */
    double circuitDurationUs = 0.0;
};

/** Abstract execution target for transpiled circuits. */
class QuantumBackend
{
  public:
    virtual ~QuantumBackend() = default;

    /**
     * Execute a bound circuit.
     *
     * @param tc transpiled circuit (compact form is executed)
     * @param params values for the circuit's parameter table
     * @param shots number of measurement shots
     * @param atTimeH virtual submission time (selects the noise state)
     * @param rng stream for shot sampling
     * @param sampleCounts also draw multinomial counts (exact
     *        distribution is always returned)
     */
    virtual JobResult execute(const TranspiledCircuit &tc,
                              const std::vector<double> &params, int shots,
                              double atTimeH, Rng &rng,
                              bool sampleCounts) = 0;

    /** Device this backend fronts. */
    virtual const Device &device() const = 0;

    /**
     * Calibration the provider advertises at time t. Clients use it for
     * Eq. 2 weighting and readout-error mitigation; it lags the true
     * noise by up to one calibration cycle.
     */
    virtual CalibrationSnapshot reportedCalibration(double tH) const = 0;

    /**
     * true when this backend already holds a compiled execution plan
     * for @p tc — i.e. running it would skip plan compilation
     * entirely. Schedulers use the probe for cache-aware placement
     * (bias work toward members that are already warm for it); a
     * backend without a plan cache reports cold for everything.
     */
    virtual bool
    planCacheContains(const TranspiledCircuit &tc) const
    {
        (void)tc;
        return false;
    }
};

/** Density-matrix-simulated QPU with drifting calibration. */
class SimulatedQpu : public QuantumBackend
{
  public:
    /**
     * @param dev device description (catalog entry)
     * @param seed experiment seed; forked per device for determinism
     */
    SimulatedQpu(Device dev, uint64_t seed);

    ~SimulatedQpu() override;

    /** Movable (the plan cache moves along; the mutex starts fresh). */
    SimulatedQpu(SimulatedQpu &&other) noexcept;

    JobResult execute(const TranspiledCircuit &tc,
                      const std::vector<double> &params, int shots,
                      double atTimeH, Rng &rng,
                      bool sampleCounts) override;

    /** One lane of a batched ensemble sweep (see executeBatch). */
    struct BatchMember
    {
        SimulatedQpu *qpu = nullptr;
        const TranspiledCircuit *tc = nullptr;
        int shots = 0;
        double atTimeH = 0.0;
        Rng *rng = nullptr;
        bool sampleCounts = true;
        JobResult *out = nullptr;
    };

    /**
     * Execute one structurally identical circuit across all @p members
     * in a single pass: the members' density matrices advance together
     * through the shared fused program in a member-major
     * structure-of-arrays state (quantum/kernel_batched.h), walking the
     * gate stream once instead of once per member. Members may front
     * different devices and different physical mappings — per-member
     * noise rides through batch kernels with per-member operands — but
     * must agree on the circuit structure (op-for-op signature match
     * ignoring the physical-mapping words) and on the structural forks
     * of the walk (noiseless-vs-noisy, trivial-vs-composed noise per
     * op). Returns false when the members are not batchable, *before*
     * touching any member's rng or result, so the caller can fall back
     * to sequential execute() calls. On success every member's result
     * and rng draws are bit-identical to what sequential execution
     * would have produced, for any EQC_THREADS.
     *
     * Static because the members typically span different SimulatedQpu
     * instances; each member's plan and noise context come from its own
     * qpu. All members are executed with the same parameter values.
     */
    static bool executeBatch(BatchMember *members, std::size_t count,
                             const std::vector<double> &params);

    const Device &device() const override { return dev_; }

    /** Calibration the provider advertises at time t (no drift). */
    CalibrationSnapshot reportedCalibration(double tH) const override;

    /** Exact (signature-verified) plan-cache membership probe. */
    bool planCacheContains(const TranspiledCircuit &tc) const override;

    /** Access to the underlying drift timeline (for benches/tests). */
    const CalibrationTracker &tracker() const { return tracker_; }

    /** Queue model of this device. */
    const QueueModel &queue() const { return queue_; }

  private:
    /**
     * Precompiled execution plan for one transpiled circuit: two fused
     * programs (see sim/fusion.h) — a Full-fusion program driving the
     * noiseless statevector fast path and a NoisePreserving program
     * driving the density-matrix path, where per-gate calibration noise
     * attaches to each fused op's primary gate — plus the physical
     * qubit mapping and measured-qubit list. The per-job loop only
     * re-evaluates symbolic fused operators (at most 4x4 products) and
     * dispatches branch-light kernel calls, with no per-gate heap
     * allocation. Cached by circuit identity (structural hash, verified
     * exactly on every hit).
     */
    struct ExecPlan;

    /**
     * Everything execute() derives from the actual calibration at one
     * submission time, cached so the many circuits of a gradient batch
     * (all submitted at the same completion time) build it once:
     * the drifted snapshot itself, per-qubit noise superoperators and
     * thermal-relaxation factors for the 1q gate time, precompiled
     * coherent-miscalibration and ZZ-phase entries, and per-pair CX
     * noise. (Circuit durations live on the ExecPlan — gate times
     * never drift.) Safe to share across concurrently executing jobs.
     */
    struct NoiseContext;

    /** Cached plan for @p tc, building it on first sight. */
    std::shared_ptr<const ExecPlan> planFor(const TranspiledCircuit &tc);

    /**
     * Cached noise context for time @p tH. The cache holds up to
     * kMaxNoiseContexts timestamps (oldest virtual time evicted) so
     * concurrently executing jobs with different completion times —
     * the serving layer's shard fan-out — don't thrash it.
     */
    std::shared_ptr<const NoiseContext> noiseContextFor(double tH);

    Device dev_;
    CalibrationTracker tracker_;
    QueueModel queue_;

    mutable std::mutex planMu_;
    std::unordered_map<uint64_t, std::shared_ptr<const ExecPlan>>
        planCache_;

    static constexpr std::size_t kMaxNoiseContexts = 16;

    std::mutex ctxMu_;
    std::map<double, std::shared_ptr<const NoiseContext>> ctxCache_;

    mutable std::mutex reportedMu_;
    mutable bool hasReported_ = false;
    mutable double reportedTimeH_ = 0.0;
    mutable CalibrationSnapshot reportedCal_;
};

/**
 * A perfect device: all-to-all coupling, no noise, negligible queue.
 * Used for the paper's "Ideal Solution" baseline curves.
 */
Device makeIdealDevice(int numQubits, const std::string &name = "ideal");

} // namespace eqc

#endif // EQC_DEVICE_BACKEND_H
