#include "device/queue_model.h"

#include <cmath>

#include "quantum/types.h"

namespace eqc {

double
QueueModel::congestionFactor(double tH) const
{
    if (params_.congestionAmplitude <= 0.0)
        return 1.0;
    double phase = 2.0 * kPi * (tH + params_.congestionPhaseH) /
                   params_.congestionPeriodH;
    return std::exp(params_.congestionAmplitude * std::sin(phase));
}

bool
QueueModel::inMaintenance(double tH) const
{
    return maintenanceRemainingH(tH) > 0.0;
}

double
QueueModel::maintenanceRemainingH(double tH) const
{
    if (params_.maintenancePeriodH <= 0.0)
        return 0.0;
    double local = std::fmod(tH - params_.maintenanceOffsetH,
                             params_.maintenancePeriodH);
    if (local < 0)
        local += params_.maintenancePeriodH;
    if (local < params_.maintenanceDurationH)
        return params_.maintenanceDurationH - local;
    return 0.0;
}

double
QueueModel::sampleWaitS(double tH, Rng &rng) const
{
    double jitter = rng.lognormal(0.0, params_.waitLogSigma);
    return params_.baseWaitS * congestionFactor(tH) * jitter;
}

double
QueueModel::expectedWaitS(double tH, int queueDepth) const
{
    return expectedWaitS(tH, static_cast<double>(queueDepth));
}

double
QueueModel::expectedWaitS(double tH, double queueDepth) const
{
    // Mean of the lognormal jitter, so the estimate is the true
    // expectation of sampleWaitS for depth 0.
    double meanJitter =
        std::exp(0.5 * params_.waitLogSigma * params_.waitLogSigma);
    double slots = queueDepth + 1.0;
    return slots * params_.baseWaitS * congestionFactor(tH) * meanJitter;
}

double
QueueModel::expectedLatencyS(double tH, double circuitDurationUs,
                             int shots, int numCircuits,
                             int queueDepth) const
{
    return maintenanceRemainingH(tH) * 3600.0 +
           expectedWaitS(tH, queueDepth) +
           executionTimeS(circuitDurationUs, shots, numCircuits);
}

double
QueueModel::executionTimeS(double circuitDurationUs, int shots,
                           int numCircuits) const
{
    double perShotUs = circuitDurationUs + params_.resetTimeUs;
    return numCircuits * shots * perShotUs / 1e6 + params_.jobOverheadS;
}

double
QueueModel::jobLatencyS(double tH, double circuitDurationUs, int shots,
                        int numCircuits, Rng &rng, int queueDepth) const
{
    double hold = maintenanceRemainingH(tH) * 3600.0;
    double slots = static_cast<double>(queueDepth) + 1.0;
    return hold + slots * sampleWaitS(tH, rng) +
           executionTimeS(circuitDurationUs, shots, numCircuits);
}

} // namespace eqc
