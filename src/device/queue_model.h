/**
 * @file
 * Cloud job-latency model.
 *
 * Shared IBMQ backends impose queue waits that dwarf circuit execution
 * and vary by orders of magnitude between devices and across the day
 * (the paper reports Toronto swinging from 6.5 to 0.03 epochs/hour and a
 * Manhattan VQE projected at 193 days). We model per-job latency as
 *
 *   latency = maintenance_hold + base_wait * diurnal_congestion *
 *             lognormal_jitter + execution + overhead
 *
 * with per-device parameters calibrated so single-device training
 * throughput reproduces the epochs/hour scale of the paper's Fig. 6.
 */

#ifndef EQC_DEVICE_QUEUE_MODEL_H
#define EQC_DEVICE_QUEUE_MODEL_H

#include "common/rng.h"

namespace eqc {

/** Queue/latency knobs (per device personality). */
struct QueueParams
{
    /** Median queue wait in seconds. */
    double baseWaitS = 60.0;
    /** Lognormal sigma of the wait jitter. */
    double waitLogSigma = 0.6;
    /** ln-scale amplitude of the diurnal congestion wave. */
    double congestionAmplitude = 0.0;
    /** Congestion period in hours. */
    double congestionPeriodH = 24.0;
    /** Congestion phase offset in hours. */
    double congestionPhaseH = 0.0;
    /** Fixed classical per-job overhead in seconds. */
    double jobOverheadS = 2.0;
    /** Per-shot qubit reset time in microseconds. */
    double resetTimeUs = 250.0;
    /** Hours between maintenance windows (0 disables). */
    double maintenancePeriodH = 0.0;
    /** Maintenance window length in hours. */
    double maintenanceDurationH = 2.0;
    /** Offset of the first maintenance window. */
    double maintenanceOffsetH = 12.0;
};

/** Samples job latencies for one device. */
class QueueModel
{
  public:
    QueueModel() = default;
    explicit QueueModel(QueueParams params) : params_(params) {}

    /** Deterministic diurnal congestion multiplier at time t. */
    double congestionFactor(double tH) const;

    /** true while the device is in a maintenance window. */
    bool inMaintenance(double tH) const;

    /** Hours until the current maintenance window ends (0 if none). */
    double maintenanceRemainingH(double tH) const;

    /** Sample the queue wait (seconds) for a job submitted at t. */
    double sampleWaitS(double tH, Rng &rng) const;

    /**
     * Deterministic expected queue wait (seconds) for a job submitted
     * at t with @p queueDepth jobs already ahead of it on the device:
     * (depth + 1) shared-queue slots of the mean jittered wait
     * (E[lognormal(0, sigma)] = exp(sigma^2 / 2)). Strictly increasing
     * in @p queueDepth — schedulers use it to steer shots away from
     * backlogged members (see serve/shot_scheduler.h).
     */
    double expectedWaitS(double tH, int queueDepth = 0) const;

    /**
     * As expectedWaitS, but with a *fractional* queue depth: the
     * admission controller spreads the node-wide backlog across the
     * live ensemble (depth / members is rarely integral) and needs the
     * estimate strictly increasing in every extra queued job so
     * retry-after hints are monotone in backlog (see
     * serve/service_node.h). Agrees exactly with the integer overload
     * at integral depths.
     */
    double expectedWaitS(double tH, double queueDepth) const;

    /**
     * Deterministic expected end-to-end latency (seconds): maintenance
     * hold + expectedWaitS + execution time. The estimate the
     * shot-sharding scheduler ranks members by; the sampled
     * jobLatencyS realizes the same model with jitter.
     */
    double expectedLatencyS(double tH, double circuitDurationUs,
                            int shots, int numCircuits,
                            int queueDepth = 0) const;

    /**
     * Deterministic execution time in seconds for a batch.
     * @param circuitDurationUs duration of one circuit execution
     * @param shots shots per circuit
     * @param numCircuits circuits in the batch
     */
    double executionTimeS(double circuitDurationUs, int shots,
                          int numCircuits) const;

    /**
     * Full sampled latency (hold + wait + execution) in seconds.
     * @param queueDepth jobs already ahead on the device; each scales
     *        the sampled wait by one more shared-queue slot
     */
    double jobLatencyS(double tH, double circuitDurationUs, int shots,
                       int numCircuits, Rng &rng,
                       int queueDepth = 0) const;

    const QueueParams &params() const { return params_; }

  private:
    QueueParams params_;
};

} // namespace eqc

#endif // EQC_DEVICE_QUEUE_MODEL_H
