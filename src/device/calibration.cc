#include "device/calibration.h"

#include <algorithm>

#include "common/logging.h"

namespace eqc {

namespace {

std::pair<int, int>
orderedPair(int a, int b)
{
    return {std::min(a, b), std::max(a, b)};
}

} // namespace

double
CalibrationSnapshot::cxErrorFor(int a, int b) const
{
    auto it = cxError.find(orderedPair(a, b));
    if (it == cxError.end())
        panic("CalibrationSnapshot::cxErrorFor: unknown pair");
    return it->second;
}

double
CalibrationSnapshot::cxTimeFor(int a, int b) const
{
    auto it = cxTimeNs.find(orderedPair(a, b));
    if (it == cxTimeNs.end())
        panic("CalibrationSnapshot::cxTimeFor: unknown pair");
    return it->second;
}

double
CalibrationSnapshot::cxPhaseFor(int a, int b) const
{
    auto it = cxPhaseRad.find(orderedPair(a, b));
    return it == cxPhaseRad.end() ? 0.0 : it->second;
}

double
CalibrationSnapshot::avgT1Us() const
{
    double s = 0.0;
    for (const auto &q : qubits)
        s += q.t1Us;
    return qubits.empty() ? 0.0 : s / qubits.size();
}

double
CalibrationSnapshot::avgT2Us() const
{
    double s = 0.0;
    for (const auto &q : qubits)
        s += q.t2Us;
    return qubits.empty() ? 0.0 : s / qubits.size();
}

double
CalibrationSnapshot::avgGate1qError() const
{
    double s = 0.0;
    for (const auto &q : qubits)
        s += q.gate1qError;
    return qubits.empty() ? 0.0 : s / qubits.size();
}

double
CalibrationSnapshot::avgCxError() const
{
    if (cxError.empty())
        return 0.0;
    double s = 0.0;
    for (const auto &[k, v] : cxError)
        s += v;
    return s / cxError.size();
}

double
CalibrationSnapshot::avgReadoutError() const
{
    double s = 0.0;
    for (const auto &q : qubits)
        s += 0.5 * (q.readout.p01 + q.readout.p10);
    return qubits.empty() ? 0.0 : s / qubits.size();
}

double
CalibrationSnapshot::avgCxTimeNs() const
{
    if (cxTimeNs.empty())
        return 0.0;
    double s = 0.0;
    for (const auto &[k, v] : cxTimeNs)
        s += v;
    return s / cxTimeNs.size();
}

double
circuitDurationUs(const QuantumCircuit &circuit,
                  const CalibrationSnapshot &cal,
                  const std::vector<int> &qubitIds)
{
    auto physId = [&](int q) {
        if (qubitIds.empty())
            return q;
        return qubitIds[q];
    };
    std::vector<double> readyNs(circuit.numQubits(), 0.0);
    double endNs = 0.0;
    for (const GateOp &op : circuit.ops()) {
        double dur = 0.0;
        switch (op.type) {
          case GateType::BARRIER: {
            double m = *std::max_element(readyNs.begin(), readyNs.end());
            std::fill(readyNs.begin(), readyNs.end(), m);
            continue;
          }
          case GateType::RZ:
            dur = 0.0;
            break;
          case GateType::MEASURE:
            dur = cal.readoutTimeNs;
            break;
          case GateType::CX:
            dur = cal.cxTimeFor(physId(op.qubits[0]), physId(op.qubits[1]));
            break;
          default:
            dur = cal.gate1qTimeNs;
        }
        double start = readyNs[op.qubits[0]];
        if (op.arity() == 2)
            start = std::max(start, readyNs[op.qubits[1]]);
        double end = start + dur;
        readyNs[op.qubits[0]] = end;
        if (op.arity() == 2)
            readyNs[op.qubits[1]] = end;
        endNs = std::max(endNs, end);
    }
    return endNs / 1000.0;
}

} // namespace eqc
