/**
 * @file
 * Static description of one QPU: identity (Table I row), connectivity,
 * factory calibration and the behavioural personalities (drift, queue).
 */

#ifndef EQC_DEVICE_DEVICE_H
#define EQC_DEVICE_DEVICE_H

#include <string>

#include "device/calibration.h"
#include "device/drift.h"
#include "device/queue_model.h"
#include "transpile/coupling_map.h"

namespace eqc {

/** One quantum processing unit, as the master node sees it. */
struct Device
{
    std::string name;          ///< e.g. "ibmq_bogota"
    int numQubits = 0;
    std::string processor;     ///< e.g. "Falcon r4L"
    int quantumVolume = 0;     ///< QV per Cross et al.
    std::string topologyName;  ///< "Line", "T-shape", ...
    CouplingMap coupling;
    CalibrationSnapshot baseCalibration;
    DriftParams drift;
    QueueParams queue;

    /**
     * Eligibility check used by the master when forming the ensemble
     * (paper Sec. III-C1: "active qubits larger than the number of
     * qubits required by the parameterized circuit").
     */
    bool canRun(int circuitQubits) const
    {
        return circuitQubits <= numQubits;
    }
};

/**
 * Synthesize a plausible calibration snapshot for a coupling map.
 *
 * Per-qubit T1/T2, 1q error and readout error are drawn around the given
 * means with small relative jitter; per-edge CX errors additionally pick
 * up a connectivity (crosstalk) penalty proportional to the endpoint
 * degrees — highly connected topologies such as the x2 bowtie pay for
 * their density exactly as Sec. III-C3 describes.
 *
 * @param coupling device connectivity
 * @param rng deterministic generator (fork of the catalog seed)
 * @param t1MeanUs mean T1
 * @param t2Ratio mean T2/T1 ratio
 * @param err1qMean mean SX/X error
 * @param cxErrMean mean CX error before the crosstalk penalty
 * @param readoutMean mean readout assignment error
 * @param crosstalk strength of the degree-based CX penalty
 * @param coherent1qSigma std-dev (radians) of per-qubit signed coherent
 *        SX/X over-rotation
 * @param coherent2qSigma std-dev (radians) of per-edge signed coherent
 *        CX ZZ-phase error
 */
CalibrationSnapshot synthesizeCalibration(const CouplingMap &coupling,
                                          Rng rng, double t1MeanUs,
                                          double t2Ratio,
                                          double err1qMean,
                                          double cxErrMean,
                                          double readoutMean,
                                          double crosstalk,
                                          double coherent1qSigma = 0.0,
                                          double coherent2qSigma = 0.0);

} // namespace eqc

#endif // EQC_DEVICE_DEVICE_H
