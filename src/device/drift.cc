#include "device/drift.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace eqc {

namespace {

/** Clamp an error probability to a sane range. */
double
clampError(double e)
{
    return std::clamp(e, 0.0, 0.75);
}

} // namespace

DriftParams
DriftParams::spiked(double ratePerHour, double severity) const
{
    DriftParams p = *this;
    if (ratePerHour >= 0.0)
        p.incidentRatePerHour = ratePerHour;
    if (severity >= 0.0)
        p.incidentSeverity = severity;
    return p;
}

CalibrationTracker::CalibrationTracker(CalibrationSnapshot base,
                                       DriftParams params, Rng rng)
    : base_(std::move(base)), params_(params)
{
    if (params_.calibrationPeriodH <= 0.0)
        fatal("CalibrationTracker: calibration period must be positive");

    Rng calRng = rng.fork("calibrations");
    Rng latentRng = rng.fork("latent");
    double t = 0.0;
    while (t < params_.horizonH) {
        calTimes_.push_back(t);
        calQuality_.push_back(
            calRng.lognormal(0.0, params_.calQualitySigma));
        latentFactor_.push_back(
            params_.latentSigma > 0.0
                ? latentRng.lognormal(0.0, params_.latentSigma)
                : 1.0);
        double jitter = params_.calibrationJitterH > 0.0
                            ? calRng.uniform(-params_.calibrationJitterH,
                                             params_.calibrationJitterH)
                            : 0.0;
        t += std::max(1.0, params_.calibrationPeriodH + jitter);
    }

    if (params_.incidentRatePerHour > 0.0) {
        Rng incRng = rng.fork("incidents");
        double cursor = 0.0;
        while (cursor < params_.horizonH) {
            double gap =
                incRng.exponentialMean(1.0 / params_.incidentRatePerHour);
            cursor += gap;
            if (cursor >= params_.horizonH)
                break;
            double dur =
                incRng.exponentialMean(params_.incidentMeanDurationH);
            // Severity varies around the configured value.
            double sev = params_.incidentSeverity *
                         incRng.lognormal(0.0, 0.25);
            incidents_.push_back({cursor, cursor + dur, sev});
            cursor += dur;
        }
    }
}

std::size_t
CalibrationTracker::calIndex(double tH) const
{
    auto it = std::upper_bound(calTimes_.begin(), calTimes_.end(), tH);
    if (it == calTimes_.begin())
        return 0;
    return static_cast<std::size_t>(it - calTimes_.begin()) - 1;
}

double
CalibrationTracker::lastCalibrationTime(double tH) const
{
    return calTimes_[calIndex(tH)];
}

double
CalibrationTracker::hoursSinceCalibration(double tH) const
{
    return std::max(0.0, tH - lastCalibrationTime(tH));
}

bool
CalibrationTracker::inIncident(double tH) const
{
    for (const Incident &inc : incidents_)
        if (tH >= inc.startH && tH < inc.endH)
            return true;
    return false;
}

double
CalibrationTracker::errorInflation(double tH) const
{
    double infl = 1.0 +
                  params_.errorDriftPerHour * hoursSinceCalibration(tH);
    // Latent (crosstalk-like) noise: real but never reported.
    infl *= latentFactor_[calIndex(tH)];
    for (const Incident &inc : incidents_)
        if (tH >= inc.startH && tH < inc.endH)
            infl *= inc.severity;
    return infl;
}

CalibrationSnapshot
CalibrationTracker::snapshotAtCalibration(std::size_t idx) const
{
    CalibrationSnapshot s = base_;
    double f = calQuality_[idx];
    double coherenceF = 1.0 / std::sqrt(f);
    for (QubitCalibration &q : s.qubits) {
        q.t1Us *= coherenceF;
        q.t2Us = std::min(q.t2Us * coherenceF, 2.0 * q.t1Us);
        q.gate1qError = clampError(q.gate1qError * f);
        q.readout.p01 = clampError(q.readout.p01 * f);
        q.readout.p10 = clampError(q.readout.p10 * f);
        q.coherentRxRad *= f; // signed miscalibration scales too
    }
    for (auto &[k, v] : s.cxError)
        v = clampError(v * f);
    for (auto &[k, v] : s.cxPhaseRad)
        v *= f;
    s.timeH = calTimes_[idx];
    return s;
}

CalibrationSnapshot
CalibrationTracker::reported(double tH) const
{
    CalibrationSnapshot s = snapshotAtCalibration(calIndex(tH));
    // T1/T2 are republished every coherenceRefreshH hours, so the
    // reported coherence tracks the true degradation in steps.
    if (params_.coherenceRefreshH > 0.0 &&
        params_.coherenceDriftPerHour > 0.0) {
        double since = hoursSinceCalibration(tH);
        double seen = std::floor(since / params_.coherenceRefreshH) *
                      params_.coherenceRefreshH;
        double f = 1.0 / (1.0 + params_.coherenceDriftPerHour * seen);
        for (QubitCalibration &q : s.qubits) {
            q.t1Us *= f;
            q.t2Us = std::min(q.t2Us * f, 2.0 * q.t1Us);
        }
    }
    return s;
}

CalibrationSnapshot
CalibrationTracker::actual(double tH) const
{
    std::size_t idx = calIndex(tH);
    CalibrationSnapshot s = snapshotAtCalibration(idx);
    double infl = errorInflation(tH);
    double since = hoursSinceCalibration(tH);
    double coherenceF =
        1.0 / (1.0 + params_.coherenceDriftPerHour * since);
    // Coherent miscalibration drifts more slowly than stochastic error
    // rates (it is a control-pulse detuning, not a decoherence budget).
    double coherentInfl = std::sqrt(infl);
    for (QubitCalibration &q : s.qubits) {
        q.t1Us *= coherenceF;
        q.t2Us = std::min(q.t2Us * coherenceF, 2.0 * q.t1Us);
        q.gate1qError = clampError(q.gate1qError * infl);
        q.readout.p01 = clampError(q.readout.p01 * infl);
        q.readout.p10 = clampError(q.readout.p10 * infl);
        q.coherentRxRad *= coherentInfl;
    }
    for (auto &[k, v] : s.cxError)
        v = clampError(v * infl);
    for (auto &[k, v] : s.cxPhaseRad)
        v *= coherentInfl;
    s.timeH = tH;
    return s;
}

} // namespace eqc
