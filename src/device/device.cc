#include "device/device.h"

#include <algorithm>
#include <cmath>

namespace eqc {

CalibrationSnapshot
synthesizeCalibration(const CouplingMap &coupling, Rng rng,
                      double t1MeanUs, double t2Ratio, double err1qMean,
                      double cxErrMean, double readoutMean,
                      double crosstalk, double coherent1qSigma,
                      double coherent2qSigma)
{
    CalibrationSnapshot cal;
    cal.timeH = 0.0;
    Rng qubitRng = rng.fork("qubits");
    for (int q = 0; q < coupling.numQubits(); ++q) {
        QubitCalibration qc;
        qc.t1Us = t1MeanUs * qubitRng.lognormal(0.0, 0.15);
        qc.t2Us = std::min(qc.t1Us * t2Ratio *
                               qubitRng.lognormal(0.0, 0.15),
                           2.0 * qc.t1Us);
        qc.gate1qError = err1qMean * qubitRng.lognormal(0.0, 0.2);
        double ro = readoutMean * qubitRng.lognormal(0.0, 0.2);
        // Readout is asymmetric on hardware: |1> readout is worse.
        qc.readout.p01 = 0.8 * ro;
        qc.readout.p10 = 1.2 * ro;
        qc.coherentRxRad = coherent1qSigma > 0.0
                               ? qubitRng.normal(0.0, coherent1qSigma)
                               : 0.0;
        cal.qubits.push_back(qc);
    }
    Rng edgeRng = rng.fork("edges");
    for (const auto &[a, b] : coupling.edges()) {
        // Crosstalk penalty: busier neighborhoods couple worse.
        int extraDeg = coupling.degree(a) + coupling.degree(b) - 2;
        double penalty = 1.0 + crosstalk * std::max(0, extraDeg - 2);
        double err = cxErrMean * penalty * edgeRng.lognormal(0.0, 0.2);
        auto key = std::minmax(a, b);
        cal.cxError[{key.first, key.second}] = err;
        cal.cxTimeNs[{key.first, key.second}] =
            edgeRng.uniform(280.0, 520.0);
        cal.cxPhaseRad[{key.first, key.second}] =
            coherent2qSigma > 0.0
                ? edgeRng.normal(0.0, coherent2qSigma)
                : 0.0;
    }
    return cal;
}

} // namespace eqc
