#include "device/catalog.h"

#include "common/logging.h"

namespace eqc {

namespace {

/** Noise/behaviour personality used to synthesize one device. */
struct Personality
{
    const char *name;
    const char *processor;
    int qv;
    const char *topologyName;
    CouplingMap (*topology)();
    // Noise means.
    double t1Us;
    double t2Ratio;
    double err1q;
    double cxErr;
    double readout;
    double crosstalk;
    // Coherent (signed, unreported) error scales in radians.
    double coh1q;
    double coh2q;
    // Queue.
    QueueParams queue;
    // Drift.
    DriftParams drift;
};

CouplingMap
line5()
{
    return CouplingMap::line(5);
}

QueueParams
queueOf(double baseWaitS, double sigma, double congestion = 0.3,
        double phaseH = 0.0, double maintPeriodH = 0.0)
{
    QueueParams q;
    q.baseWaitS = baseWaitS;
    q.waitLogSigma = sigma;
    q.congestionAmplitude = congestion;
    q.congestionPhaseH = phaseH;
    q.maintenancePeriodH = maintPeriodH;
    q.maintenanceDurationH = 3.0;
    return q;
}

DriftParams
driftOf(double errPerHour, double incidentRate = 0.0,
        double severity = 4.0, double meanDurH = 6.0)
{
    DriftParams d;
    d.errorDriftPerHour = errPerHour;
    d.incidentRatePerHour = incidentRate;
    d.incidentSeverity = severity;
    d.incidentMeanDurationH = meanDurH;
    return d;
}

std::vector<Personality>
personalities()
{
    // Queue medians are calibrated so single-device VQE throughput
    // lands on the paper's Fig. 6 epochs/hour scale (x2 ~9/h,
    // Casablanca ~6.8/h, Santiago ~0.5/h, Manhattan ~0.05/h) with one
    // gradient job = 6 circuits of 8192 shots, 17 jobs per epoch.
    return {
        // name, processor, QV, topo-name, topo, T1, T2/T1, e1q, eCX,
        // eRO, xtalk, queue, drift
        {"ibmq_lima", "Falcon r4T", 8, "T-shape", CouplingMap::tShape,
         70.0, 0.85, 5.0e-4, 1.30e-2, 2.8e-2, 0.05, 0.012, 0.030,
         queueOf(40.0, 0.6), driftOf(0.012)},
        {"ibmqx2", "Falcon r4T", 8, "Fully-connected",
         CouplingMap::bowtie, 45.0, 0.70, 1.2e-3, 2.40e-2, 4.5e-2, 0.12,
         0.035, 0.080, queueOf(15.0, 0.5), driftOf(0.020)},
        {"ibmq_belem", "Falcon r4T", 16, "T-shape", CouplingMap::tShape,
         85.0, 0.90, 4.0e-4, 1.10e-2, 2.2e-2, 0.05, 0.010, 0.026,
         queueOf(28.0, 0.6), driftOf(0.010)},
        {"ibmq_quito", "Falcon r4T", 16, "T-shape", CouplingMap::tShape,
         90.0, 0.95, 3.0e-4, 0.80e-2, 1.6e-2, 0.05, 0.008, 0.020,
         queueOf(31.0, 0.6), driftOf(0.008)},
        {"ibmq_manila", "Falcon r5.11L", 32, "Line", line5, 120.0, 1.00,
         2.5e-4, 0.70e-2, 1.8e-2, 0.04, 0.007, 0.018,
         queueOf(35.0, 0.6), driftOf(0.008)},
        {"ibmq_santiago", "Falcon r4L", 16, "Line", line5, 95.0, 0.95,
         3.5e-4, 0.85e-2, 1.7e-2, 0.04, 0.009, 0.022,
         queueOf(380.0, 0.7, 0.8), driftOf(0.010)},
        {"ibmq_bogota", "Falcon r4L", 32, "Line", line5, 110.0, 1.00,
         3.0e-4, 0.75e-2, 1.5e-2, 0.04, 0.007, 0.017,
         queueOf(17.0, 0.5), driftOf(0.007)},
        {"ibm_lagos", "Falcon r5.11H", 32, "H-shape",
         CouplingMap::hShape, 115.0, 1.00, 2.5e-4, 0.75e-2, 1.4e-2, 0.05,
         0.008, 0.019, queueOf(52.0, 0.6), driftOf(0.008)},
        // Casablanca: fast queue but violently drifting — the paper's
        // running example of time-dependent machine degradation.
        {"ibmq_casablanca", "Falcon r4H", 32, "H-shape",
         CouplingMap::hShape, 90.0, 0.90, 4.0e-4, 0.90e-2, 1.9e-2, 0.05,
         0.012, 0.032,
         queueOf(20.0, 0.5), driftOf(0.030, 0.010, 2.8, 8.0)},
        // Toronto: decent fabric, wildly swinging queue (6.5 -> 0.03
        // epochs/hour in the paper) plus periodic maintenance.
        {"ibmq_toronto", "Falcon r4", 32, "Honeycomb",
         CouplingMap::heavyHex27, 100.0, 0.95, 3.5e-4, 1.00e-2, 2.4e-2,
         0.03, 0.010, 0.025, queueOf(460.0, 0.9, 2.2, 6.0, 72.0),
         driftOf(0.012, 0.008, 3.0, 6.0)},
        // Manhattan: months-per-training-run queue.
        {"ibmq_manhattan", "Falcon r4", 32, "Honeycomb",
         CouplingMap::heavyHex65, 95.0, 0.90, 4.0e-4, 1.10e-2, 2.6e-2,
         0.03, 0.011, 0.028, queueOf(2800.0, 0.9, 1.0, 15.0),
         driftOf(0.012)},
    };
}

Device
build(const Personality &p, uint64_t seed)
{
    Device d;
    d.name = p.name;
    d.processor = p.processor;
    d.quantumVolume = p.qv;
    d.topologyName = p.topologyName;
    d.coupling = p.topology();
    d.numQubits = d.coupling.numQubits();
    Rng rng = Rng(seed).fork(d.name);
    d.baseCalibration = synthesizeCalibration(
        d.coupling, rng.fork("cal"), p.t1Us, p.t2Ratio, p.err1q, p.cxErr,
        p.readout, p.crosstalk, p.coh1q, p.coh2q);
    d.drift = p.drift;
    d.queue = p.queue;
    return d;
}

} // namespace

std::vector<Device>
ibmqCatalog(uint64_t seed)
{
    std::vector<Device> out;
    for (const Personality &p : personalities())
        out.push_back(build(p, seed));
    return out;
}

Device
deviceByName(const std::string &name, uint64_t seed)
{
    for (const Personality &p : personalities())
        if (name == p.name)
            return build(p, seed);
    fatal("deviceByName: unknown device '" + name + "'");
}

std::vector<Device>
evaluationEnsemble(uint64_t seed)
{
    std::vector<Device> out;
    for (Device &d : ibmqCatalog(seed))
        if (d.name != "ibmq_manhattan")
            out.push_back(std::move(d));
    return out;
}

} // namespace eqc
