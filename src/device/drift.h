/**
 * @file
 * Time-dependent calibration drift.
 *
 * The paper's central systems observation is that QPU quality is
 * volatile: error rates grow as time-since-calibration increases,
 * recalibration resets (and slightly re-randomizes) them, and machines
 * occasionally fall into extended "deleterious running conditions"
 * (their Casablanca example). CalibrationTracker models all three:
 *
 *  - a calibration schedule (period + jitter) where each cycle draws a
 *    fresh quality factor;
 *  - within a cycle, *actual* error rates inflate linearly with hours
 *    since calibration while T1/T2 degrade — but the *reported*
 *    calibration stays frozen at its last-measured values, which is what
 *    makes stale calibrations mispredict (Fig. 4);
 *  - Poisson-arriving instability incidents that multiply error rates
 *    for hours at a time.
 *
 * The whole timeline is precomputed from a fork of the experiment seed,
 * so queries are pure functions of time and campaigns replay exactly.
 */

#ifndef EQC_DEVICE_DRIFT_H
#define EQC_DEVICE_DRIFT_H

#include <vector>

#include "common/rng.h"
#include "device/calibration.h"

namespace eqc {

/** Drift-model knobs (per device personality). */
struct DriftParams
{
    /** Mean hours between calibrations. */
    double calibrationPeriodH = 24.0;
    /** Uniform jitter applied to each calibration interval. */
    double calibrationJitterH = 3.0;
    /** Lognormal sigma of the per-calibration quality factor. */
    double calQualitySigma = 0.08;
    /** Linear error-rate inflation per hour since calibration. */
    double errorDriftPerHour = 0.01;
    /** Linear T1/T2 degradation per hour since calibration. */
    double coherenceDriftPerHour = 0.003;
    /**
     * Cadence at which the provider re-measures and republishes T1/T2
     * (IBMQ refreshes coherence data far more often than full gate
     * calibrations). Reported T1/T2 therefore tracks drift in steps of
     * this period, while reported error rates stay frozen until the
     * next full calibration.
     */
    double coherenceRefreshH = 1.0;
    /** Poisson rate of instability incidents (per hour). */
    double incidentRatePerHour = 0.0;
    /** Mean incident duration (exponential). */
    double incidentMeanDurationH = 4.0;
    /** Error multiplier while an incident is active. */
    double incidentSeverity = 4.0;
    /**
     * Lognormal sigma of the *latent* noise factor: crosstalk-like
     * device-specific noise that affects actual execution but never
     * shows up in the reported calibration (paper Sec. I/II-B). This is
     * what keeps the Eq. 2 model's Fig. 4 correlation strong but
     * imperfect. Redrawn at every calibration.
     */
    double latentSigma = 0.40;
    /** Precomputation horizon. */
    double horizonH = 2400.0;

    /**
     * Copy of these params with instability incidents dialed up to
     * @p ratePerHour / @p severity — the chaos harness's calibration
     * drift spike, flowing through the normal noise-context path
     * (Poisson incident timeline, Sec. II-B "deleterious running
     * conditions"). Values < 0 leave the respective knob unchanged.
     */
    DriftParams spiked(double ratePerHour, double severity) const;
};

/** Deterministic per-device calibration/drift timeline. */
class CalibrationTracker
{
  public:
    /**
     * @param base factory calibration of the device
     * @param params drift personality
     * @param rng generator forked for this device (consumed eagerly)
     */
    CalibrationTracker(CalibrationSnapshot base, DriftParams params,
                       Rng rng);

    /**
     * What the provider *advertises* at time t: the snapshot taken at
     * the most recent calibration, unaware of any drift since.
     */
    CalibrationSnapshot reported(double tH) const;

    /** The *true* noise at time t (drift and incidents applied). */
    CalibrationSnapshot actual(double tH) const;

    /** Time of the most recent calibration at or before t. */
    double lastCalibrationTime(double tH) const;

    /** Hours elapsed since the last calibration. */
    double hoursSinceCalibration(double tH) const;

    /** Multiplicative error inflation actual/reported at time t. */
    double errorInflation(double tH) const;

    /** true while an instability incident is active. */
    bool inIncident(double tH) const;

    const DriftParams &params() const { return params_; }

  private:
    CalibrationSnapshot base_;
    DriftParams params_;
    std::vector<double> calTimes_;
    std::vector<double> calQuality_;
    std::vector<double> latentFactor_;
    struct Incident
    {
        double startH;
        double endH;
        double severity;
    };
    std::vector<Incident> incidents_;

    std::size_t calIndex(double tH) const;
    CalibrationSnapshot snapshotAtCalibration(std::size_t idx) const;
};

} // namespace eqc

#endif // EQC_DEVICE_DRIFT_H
