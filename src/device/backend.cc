#include "device/backend.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "quantum/density_matrix.h"
#include "quantum/kernel_batched.h"
#include "quantum/statevector.h"
#include "sim/fusion.h"

namespace eqc {

struct SimulatedQpu::ExecPlan
{
    int numQubits = 0;
    /** NoisePreserving fusion: the density-matrix (noisy) path. */
    FusedProgram noisy;
    /** Full fusion: the noiseless statevector fast path. */
    FusedProgram ideal;
    /** Compact qubit -> physical id (calibration lookups). */
    std::vector<int> physOf;
    /** MEASURE targets (compact qubits) in program order. */
    std::vector<int> measured;
    /**
     * Wall-clock duration of one execution (microseconds). Gate times
     * never drift (only error rates and coherences do), so this is a
     * pure function of the circuit and the base calibration.
     */
    double durationUs = 0.0;
    /** Exact structural identity, checked on every cache hit. */
    std::vector<uint64_t> signature;
};

struct SimulatedQpu::NoiseContext
{
    double timeH = 0.0;
    CalibrationSnapshot cal;
    bool noiseless = false;

    /** Thermal-relaxation factors per physical qubit for the 1q time. */
    std::vector<double> g1Gamma, g1Coherence;
    /** Coherent RX miscalibration, precompiled per physical qubit. */
    std::vector<char> hasRx;
    std::vector<std::array<Complex, 4>> rx;
    /**
     * Per-qubit post-gate noise superoperator for physical 1q gates:
     * the 4x4 composition depolarizing(gate1qError) * thermal(1q gate
     * time) over the vectorized sub-index k + 2b. execute() left-
     * multiplies it onto each fused unitary's U (x) conj(U) so the
     * whole gate+noise sequence costs a single kernel pass.
     */
    std::vector<std::array<Complex, 16>> n1;
    /** n1 is the identity and no rx: plain unitary apply suffices. */
    std::vector<char> n1Trivial;

    /** Per-pair CX noise, keyed by (min, max) physical ids. */
    struct CxNoise
    {
        double err = 0.0;
        bool hasZz = false;
        Complex zz[4]; ///< residual ZZ phase (diag; swap-symmetric)
        /** No depolarizing / thermal: skip the noise pass. */
        bool trivial = false;
        /** Thermal factors over the CX duration per endpoint. */
        double gammaLo = 0.0, cohLo = 1.0;
        double gammaHi = 0.0, cohHi = 1.0;
    };
    std::map<std::pair<int, int>, CxNoise> cx;
};

namespace {

/**
 * Feed every word of a circuit's structural identity (width, parameter
 * table, physical mapping, each op with its angle expressions) to @p f.
 * Used twice per execute: once hashing, once verifying the cached plan
 * — both passes allocation-free.
 */
template <typename Fn>
void
forEachSignatureWord(const TranspiledCircuit &tc, Fn &&f)
{
    const QuantumCircuit &c = tc.compact;
    f(static_cast<uint64_t>(c.numQubits()));
    f(static_cast<uint64_t>(c.numParams()));
    for (int p : tc.compactToPhysical)
        f(static_cast<uint64_t>(p) + 1);
    for (const GateOp &op : c.ops()) {
        f((static_cast<uint64_t>(op.type) << 32) |
          (static_cast<uint64_t>(static_cast<uint16_t>(op.qubits[0] + 1))
           << 16) |
          static_cast<uint64_t>(static_cast<uint16_t>(op.qubits[1] + 1)));
        for (const ParamExpr &pe : op.params) {
            f(static_cast<uint64_t>(static_cast<int64_t>(pe.index)));
            uint64_t bits;
            std::memcpy(&bits, &pe.scale, sizeof(bits));
            f(bits);
            std::memcpy(&bits, &pe.offset, sizeof(bits));
            f(bits);
        }
    }
}

uint64_t
signatureHash(const TranspiledCircuit &tc)
{
    uint64_t h = 0xCBF29CE484222325ULL; // FNV-1a 64
    forEachSignatureWord(tc, [&](uint64_t w) {
        h ^= w;
        h *= 0x100000001B3ULL;
    });
    return h;
}

bool
signatureMatches(const TranspiledCircuit &tc,
                 const std::vector<uint64_t> &sig)
{
    bool match = true;
    std::size_t i = 0;
    forEachSignatureWord(tc, [&](uint64_t w) {
        if (match && (i >= sig.size() || sig[i] != w))
            match = false;
        ++i;
    });
    return match && i == sig.size();
}

/** Thermal-relaxation factors for @p qc over @p timeUs. */
void
thermalFactors(const QubitCalibration &qc, double timeUs, double &gamma,
               double &coherence)
{
    double t2 = std::min(qc.t2Us, 2.0 * qc.t1Us);
    gamma = 1.0 - std::exp(-timeUs / qc.t1Us);
    coherence = std::exp(-timeUs / t2);
}

/**
 * c = a * b for row-major sub x sub matrices (composing a channel
 * superoperator onto a unitary's U (x) conj(U) in execute()).
 */
void
matMul(Complex *c, const Complex *a, const Complex *b, int sub)
{
    for (int r = 0; r < sub; ++r)
        for (int col = 0; col < sub; ++col) {
            Complex s(0, 0);
            for (int k = 0; k < sub; ++k)
                s += a[r * sub + k] * b[k * sub + col];
            c[r * sub + col] = s;
        }
}

/** true when the calibration carries effectively no noise. */
bool
isNoiseless(const CalibrationSnapshot &cal)
{
    for (const auto &q : cal.qubits) {
        if (q.gate1qError > 0.0 || q.readout.p01 > 0.0 ||
            q.readout.p10 > 0.0 || q.t1Us < 1e7) {
            return false;
        }
    }
    for (const auto &[k, v] : cal.cxError)
        if (v > 0.0)
            return false;
    return true;
}

} // namespace

SimulatedQpu::SimulatedQpu(Device dev, uint64_t seed)
    : dev_(std::move(dev)),
      tracker_(dev_.baseCalibration, dev_.drift,
               Rng(seed).fork("drift:" + dev_.name)),
      queue_(dev_.queue)
{
}

SimulatedQpu::~SimulatedQpu() = default;

SimulatedQpu::SimulatedQpu(SimulatedQpu &&other) noexcept
    : dev_(std::move(other.dev_)),
      tracker_(std::move(other.tracker_)),
      queue_(std::move(other.queue_)),
      planCache_(std::move(other.planCache_)),
      ctxCache_(std::move(other.ctxCache_))
{
}

std::shared_ptr<const SimulatedQpu::ExecPlan>
SimulatedQpu::planFor(const TranspiledCircuit &tc)
{
    const uint64_t key = signatureHash(tc);
    {
        std::lock_guard<std::mutex> lk(planMu_);
        auto it = planCache_.find(key);
        if (it != planCache_.end() &&
            signatureMatches(tc, it->second->signature)) {
            return it->second;
        }
    }

    auto plan = std::make_shared<ExecPlan>();
    plan->numQubits = tc.compact.numQubits();
    plan->physOf = tc.compactToPhysical;
    forEachSignatureWord(
        tc, [&](uint64_t w) { plan->signature.push_back(w); });
    plan->noisy =
        fuseForSimulation(tc.compact, FusionMode::NoisePreserving);
    plan->ideal = fuseForSimulation(tc.compact, FusionMode::Full);
    plan->durationUs = circuitDurationUs(tc.compact, dev_.baseCalibration,
                                         tc.compactToPhysical);
    for (const GateOp &op : tc.compact.ops())
        if (op.type == GateType::MEASURE)
            plan->measured.push_back(op.qubits[0]);

    std::lock_guard<std::mutex> lk(planMu_);
    // Possibly racing another builder, or evicting a hash collision;
    // either way the freshly built plan is a correct occupant, and
    // shared ownership keeps any in-flight reader's plan alive.
    planCache_[key] = plan;
    return plan;
}

bool
SimulatedQpu::planCacheContains(const TranspiledCircuit &tc) const
{
    const uint64_t key = signatureHash(tc);
    std::lock_guard<std::mutex> lk(planMu_);
    auto it = planCache_.find(key);
    return it != planCache_.end() &&
           signatureMatches(tc, it->second->signature);
}

std::shared_ptr<const SimulatedQpu::NoiseContext>
SimulatedQpu::noiseContextFor(double tH)
{
    // Held across the build: a gradient batch lands all its circuit
    // executions on one fresh timestamp at once, and one thread
    // constructing while the rest wait beats every worker redundantly
    // re-deriving the same snapshot and superoperators. The cache is
    // keyed per timestamp (bounded, oldest-time eviction) because the
    // serving layer interleaves shards of different jobs — different
    // completion times — on one backend; a single-entry cache would
    // ping-pong and rebuild on nearly every circuit execution.
    std::lock_guard<std::mutex> lk(ctxMu_);
    auto cached = ctxCache_.find(tH);
    if (cached != ctxCache_.end())
        return cached->second;

    auto ctx = std::make_shared<NoiseContext>();
    ctx->timeH = tH;
    ctx->cal = tracker_.actual(tH);
    ctx->noiseless = isNoiseless(ctx->cal);

    const double t1qUs = ctx->cal.gate1qTimeNs / 1000.0;
    const std::size_t nq = ctx->cal.qubits.size();
    ctx->g1Gamma.resize(nq);
    ctx->g1Coherence.resize(nq);
    ctx->hasRx.assign(nq, 0);
    ctx->rx.resize(nq);
    ctx->n1.resize(nq);
    ctx->n1Trivial.assign(nq, 0);
    for (std::size_t q = 0; q < nq; ++q) {
        const QubitCalibration &qc = ctx->cal.qubits[q];
        thermalFactors(qc, t1qUs, ctx->g1Gamma[q], ctx->g1Coherence[q]);
        if (qc.coherentRxRad != 0.0) {
            ctx->hasRx[q] = 1;
            const double angle[1] = {qc.coherentRxRad};
            gateEntries(GateType::RX, angle, ctx->rx[q].data());
        }
        // One source of truth for the channel physics: thermal
        // relaxation then depolarizing, composed in Kraus form
        // (quantum/kraus.h) and flattened to the 4x4 superoperator.
        const KrausChannel seq =
            thermalRelaxation(qc.t1Us, qc.t2Us, t1qUs)
                .composeWith(depolarizing1q(qc.gate1qError));
        const CVector &s = seq.superopMatrix();
        std::copy(s.begin(), s.end(), ctx->n1[q].begin());
        ctx->n1Trivial[q] = !ctx->hasRx[q] && qc.gate1qError <= 0.0 &&
                            ctx->g1Gamma[q] == 0.0 &&
                            ctx->g1Coherence[q] == 1.0;
    }
    for (const auto &[pair, err] : ctx->cal.cxError) {
        auto timeIt = ctx->cal.cxTimeNs.find(pair);
        if (timeIt == ctx->cal.cxTimeNs.end())
            continue; // no duration on record: unusable pair
        NoiseContext::CxNoise cn;
        const double durUs = timeIt->second / 1000.0;
        const double phase =
            ctx->cal.cxPhaseFor(pair.first, pair.second);
        if (phase != 0.0) {
            cn.hasZz = true;
            const double angle[1] = {phase};
            gateEntries(GateType::RZZ, angle, cn.zz);
        }
        cn.err = err;
        thermalFactors(ctx->cal.qubits[pair.first], durUs, cn.gammaLo,
                       cn.cohLo);
        thermalFactors(ctx->cal.qubits[pair.second], durUs, cn.gammaHi,
                       cn.cohHi);
        cn.trivial = err <= 0.0 && cn.gammaLo == 0.0 &&
                     cn.cohLo == 1.0 && cn.gammaHi == 0.0 &&
                     cn.cohHi == 1.0;
        ctx->cx.emplace(pair, cn);
    }

    auto inserted = ctxCache_.emplace(tH, std::move(ctx)).first;
    if (ctxCache_.size() > kMaxNoiseContexts) {
        auto victim = ctxCache_.begin(); // oldest virtual time
        if (victim == inserted)
            ++victim;
        ctxCache_.erase(victim);
    }
    return inserted->second;
}

CalibrationSnapshot
SimulatedQpu::reportedCalibration(double tH) const
{
    std::lock_guard<std::mutex> lk(reportedMu_);
    if (!hasReported_ || reportedTimeH_ != tH) {
        reportedCal_ = tracker_.reported(tH);
        reportedTimeH_ = tH;
        hasReported_ = true;
    }
    return reportedCal_;
}

JobResult
SimulatedQpu::execute(const TranspiledCircuit &tc,
                      const std::vector<double> &params, int shots,
                      double atTimeH, Rng &rng, bool sampleCounts)
{
    const int n = tc.compact.numQubits();
    if (n < 1)
        panic("SimulatedQpu::execute: empty circuit");

    const std::shared_ptr<const ExecPlan> planPtr = planFor(tc);
    const ExecPlan &plan = *planPtr;
    const std::shared_ptr<const NoiseContext> ctxPtr =
        noiseContextFor(atTimeH);
    const NoiseContext &nc = *ctxPtr;

    JobResult result;
    result.shots = shots;
    result.circuitDurationUs = plan.durationUs;

    if (nc.noiseless) {
        // Pure-state fast path for the ideal baseline: the Full-fusion
        // program, one kernel pass per fused operator.
        Statevector sv(n);
        applyFusedProgram(plan.ideal, params, sv);
        result.probabilities = sv.probabilities();
    } else {
        DensityMatrix dm(n);
        Complex scratch[16];
        for (const FusedOp &op : plan.noisy.ops) {
            // Evaluate the fused unitary (symbolic ops rebuild their at
            // most 4x4 product; gate+noise sequences below fold it into
            // one channel superoperator instead of applying it here).
            const Complex *u = op.entries;
            const bool hasUnitary = op.termBegin != op.termEnd;
            if (hasUnitary && op.symbolic) {
                fusedEntries(plan.noisy, op, params, scratch);
                u = scratch;
            }

            switch (op.primary) {
              case GateType::RZ:
                // Virtual-only op: implemented in software, no noise.
                if (hasUnitary) {
                    if (op.twoQubit)
                        op.diagonal ? dm.applyDiag2(u, op.q0, op.q1)
                                    : dm.applyGate2(u, op.q0, op.q1);
                    else
                        op.diagonal ? dm.applyDiag1(u, op.q0)
                                    : dm.applyGate1(u, op.q0);
                }
                break;
              case GateType::ID: {
                // Explicit idle: thermal relaxation only, no unitary.
                const int p0 = plan.physOf[op.q0];
                dm.applyThermalRelaxation(op.q0, nc.g1Gamma[p0],
                                          nc.g1Coherence[p0]);
                break;
              }
              case GateType::SX:
              case GateType::X: {
                // One pass for the whole sequence the unfused executor
                // used to spread over up to four: fused unitary,
                // coherent miscalibration, thermal relaxation and
                // depolarizing compose into a single 4x4 channel
                // superoperator N1 * (W (x) conj(W)).
                const int p0 = plan.physOf[op.q0];
                Complex w[4];
                if (nc.hasRx[p0])
                    matMul(w, nc.rx[p0].data(), u, 2);
                else
                    std::memcpy(w, u, sizeof(w));
                if (nc.n1Trivial[p0]) {
                    dm.applyGate1(w, op.q0);
                    break;
                }
                Complex m[16], s[16];
                for (int kp = 0; kp < 2; ++kp)
                    for (int bp = 0; bp < 2; ++bp)
                        for (int k = 0; k < 2; ++k)
                            for (int b = 0; b < 2; ++b)
                                m[(kp + 2 * bp) * 4 + (k + 2 * b)] =
                                    w[kp * 2 + k] *
                                    std::conj(w[bp * 2 + b]);
                matMul(s, nc.n1[p0].data(), m, 4);
                dm.applyChannelSuperop1(s, op.q0);
                break;
              }
              case GateType::CX: {
                const int p0 = plan.physOf[op.q0];
                const int p1 = plan.physOf[op.q1];
                const auto key = std::minmax(p0, p1);
                auto it = nc.cx.find({key.first, key.second});
                if (it == nc.cx.end())
                    panic("SimulatedQpu: CX on uncoupled qubits");
                const NoiseContext::CxNoise &cn = it->second;
                if (cn.hasZz) {
                    // Residual ZZ phase accompanying the CX pulse
                    // (swap-symmetric diagonal, orientation-free):
                    // fold it into the fused unitary's entries.
                    Complex w2[16];
                    for (int r = 0; r < 4; ++r)
                        for (int c = 0; c < 4; ++c)
                            w2[r * 4 + c] = cn.zz[r] * u[r * 4 + c];
                    dm.applyGate2(w2, op.q0, op.q1);
                } else {
                    dm.applyGate2(u, op.q0, op.q1);
                }
                if (!cn.trivial) {
                    // One block-local pass for depolarizing + both
                    // endpoints' thermal relaxation.
                    const bool lo0 = p0 == key.first;
                    dm.applyDepolThermal2q(
                        cn.err, op.q0, lo0 ? cn.gammaLo : cn.gammaHi,
                        lo0 ? cn.cohLo : cn.cohHi, op.q1,
                        lo0 ? cn.gammaHi : cn.gammaLo,
                        lo0 ? cn.cohHi : cn.cohLo);
                }
                break;
              }
              default:
                panic("SimulatedQpu: non-basis gate '" +
                      gateName(op.primary) + "' reached the backend");
            }
        }
        result.probabilities = dm.probabilities();
        // SPAM: per-qubit readout confusion on the measured qubits.
        for (int q : plan.measured) {
            const QubitCalibration &qc =
                nc.cal.qubits[plan.physOf[q]];
            applyReadoutError(result.probabilities, q, qc.readout);
        }
    }

    if (sampleCounts && shots > 0)
        result.counts = rng.multinomial(result.probabilities,
                                        static_cast<uint64_t>(shots));
    return result;
}

bool
SimulatedQpu::executeBatch(BatchMember *members, std::size_t count,
                           const std::vector<double> &params)
{
    if (count < 2)
        return false;

    std::vector<std::shared_ptr<const ExecPlan>> plans(count);
    std::vector<std::shared_ptr<const NoiseContext>> ctxs(count);
    for (std::size_t m = 0; m < count; ++m) {
        plans[m] = members[m].qpu->planFor(*members[m].tc);
        ctxs[m] = members[m].qpu->noiseContextFor(members[m].atTimeH);
    }
    const ExecPlan &plan0 = *plans[0];
    const int n = plan0.numQubits;
    if (n < 1)
        return false;

    // Structural identity, ignoring the physical-mapping words at
    // [2, 2 + n) of the signature (see forEachSignatureWord):
    // heterogeneous device mappings batch fine, because the noisy walk
    // below resolves calibration per member through its own physOf.
    for (std::size_t m = 1; m < count; ++m) {
        const ExecPlan &p = *plans[m];
        if (p.numQubits != n ||
            p.signature.size() != plan0.signature.size()) {
            return false;
        }
        for (std::size_t w = 0; w < p.signature.size(); ++w) {
            if (w >= 2 && w < 2 + static_cast<std::size_t>(n))
                continue;
            if (p.signature[w] != plan0.signature[w])
                return false;
        }
    }

    // The noiseless statevector fast path vs the density-matrix walk is
    // a structural fork: all members must take the same side.
    const bool noiseless = ctxs[0]->noiseless;
    for (std::size_t m = 1; m < count; ++m)
        if (ctxs[m]->noiseless != noiseless)
            return false;

    if (noiseless) {
        // Identical ideal programs (signature-verified) mean every
        // member's statevector pass is the same: run it once and share
        // the distribution. Sampling still draws per member from its
        // own rng, exactly as the sequential loop would.
        Statevector sv(n);
        applyFusedProgram(plan0.ideal, params, sv);
        const std::vector<double> probs = sv.probabilities();
        for (std::size_t m = 0; m < count; ++m) {
            JobResult &r = *members[m].out;
            r.shots = members[m].shots;
            r.circuitDurationUs = plans[m]->durationUs;
            r.probabilities = probs;
            r.counts.clear();
            if (members[m].sampleCounts && members[m].shots > 0) {
                r.counts = members[m].rng->multinomial(
                    r.probabilities,
                    static_cast<uint64_t>(members[m].shots));
            }
        }
        return true;
    }

    // Noisy walk over the shared fused program, mirroring execute()
    // op for op. Eligibility of per-op structural forks is checked
    // inline: bailing mid-walk is clean because the batched state is
    // local and no member rng or result has been touched yet.
    detail::BatchedDensityMatrix bdm(n, static_cast<int>(count));
    Complex scratch[16];
    std::vector<Complex> sBuf(16 * count);
    std::vector<detail::PermPhase> ppBuf(count);
    std::vector<double> lamBuf(count), gABuf(count), cABuf(count),
        gBBuf(count), cBBuf(count);
    std::vector<const NoiseContext::CxNoise *> cnBuf(count);
    std::vector<char> lo0Buf(count);

    for (const FusedOp &op : plan0.noisy.ops) {
        const Complex *u = op.entries;
        const bool hasUnitary = op.termBegin != op.termEnd;
        if (hasUnitary && op.symbolic) {
            fusedEntries(plan0.noisy, op, params, scratch);
            u = scratch;
        }

        switch (op.primary) {
          case GateType::RZ:
            if (hasUnitary) {
                if (op.twoQubit)
                    op.diagonal ? bdm.applyDiag2(u, op.q0, op.q1)
                                : bdm.applyGate2(u, op.q0, op.q1);
                else
                    op.diagonal ? bdm.applyDiag1(u, op.q0)
                                : bdm.applyGate1(u, op.q0);
            }
            break;
          case GateType::ID: {
            for (std::size_t m = 0; m < count; ++m) {
                const int p0 = plans[m]->physOf[op.q0];
                gABuf[m] = ctxs[m]->g1Gamma[p0];
                cABuf[m] = ctxs[m]->g1Coherence[p0];
            }
            bdm.applyThermalRelaxationPerMember(gABuf.data(),
                                                cABuf.data(), op.q0);
            break;
          }
          case GateType::SX:
          case GateType::X: {
            // Trivial noise takes the plain unitary apply, composed
            // noise the superop pass — a structural fork, so it must
            // be uniform across members.
            const bool triv0 =
                ctxs[0]->n1Trivial[plans[0]->physOf[op.q0]] != 0;
            for (std::size_t m = 1; m < count; ++m) {
                const bool triv =
                    ctxs[m]->n1Trivial[plans[m]->physOf[op.q0]] != 0;
                if (triv != triv0)
                    return false;
            }
            if (triv0) {
                // Trivial implies no coherent miscalibration, so every
                // member's W equals the shared fused unitary.
                bdm.applyGate1(u, op.q0);
                break;
            }
            for (std::size_t m = 0; m < count; ++m) {
                const int p0 = plans[m]->physOf[op.q0];
                const NoiseContext &nc = *ctxs[m];
                Complex w[4];
                if (nc.hasRx[p0])
                    matMul(w, nc.rx[p0].data(), u, 2);
                else
                    std::memcpy(w, u, sizeof(w));
                Complex wk[16];
                for (int kp = 0; kp < 2; ++kp)
                    for (int bp = 0; bp < 2; ++bp)
                        for (int kq = 0; kq < 2; ++kq)
                            for (int bq = 0; bq < 2; ++bq)
                                wk[(kp + 2 * bp) * 4 + (kq + 2 * bq)] =
                                    w[kp * 2 + kq] *
                                    std::conj(w[bp * 2 + bq]);
                matMul(sBuf.data() + 16 * m, nc.n1[p0].data(), wk, 4);
            }
            bdm.applyChannelSuperop1PerMember(sBuf.data(), op.q0);
            break;
          }
          case GateType::CX: {
            bool anyZz = false;
            for (std::size_t m = 0; m < count; ++m) {
                const int p0 = plans[m]->physOf[op.q0];
                const int p1 = plans[m]->physOf[op.q1];
                const auto key = std::minmax(p0, p1);
                auto it =
                    ctxs[m]->cx.find({key.first, key.second});
                if (it == ctxs[m]->cx.end())
                    panic("SimulatedQpu: CX on uncoupled qubits");
                cnBuf[m] = &it->second;
                lo0Buf[m] = p0 == key.first ? 1 : 0;
                if (cnBuf[m]->hasZz)
                    anyZz = true;
            }
            if (!anyZz) {
                bdm.applyGate2(u, op.q0, op.q1);
            } else {
                // Per-member ZZ fold. A folded CX is diag x perm —
                // still permutation-phase with the same permutation —
                // which the per-member kernel covers; anything else
                // (a General fused unitary under a partial fold)
                // falls back to sequential execution.
                bool ok = true;
                for (std::size_t m = 0; m < count && ok; ++m) {
                    Complex w2[16];
                    if (cnBuf[m]->hasZz) {
                        for (int r = 0; r < 4; ++r)
                            for (int c = 0; c < 4; ++c)
                                w2[r * 4 + c] =
                                    cnBuf[m]->zz[r] * u[r * 4 + c];
                    } else {
                        std::memcpy(w2, u, sizeof(w2));
                    }
                    Complex dg[4];
                    if (detail::classifyGate(w2, 4, dg, ppBuf[m]) !=
                        detail::GateKind::PermPhase) {
                        ok = false;
                        break;
                    }
                    for (int r = 0; r < 4 && m > 0; ++r)
                        if (ppBuf[m].perm[r] != ppBuf[0].perm[r])
                            ok = false;
                }
                if (!ok)
                    return false;
                bdm.applyPermPhase2PerMember(ppBuf.data(), op.q0,
                                             op.q1);
            }
            // Skipping the noise pass is a structural fork too.
            const bool trivCx = cnBuf[0]->trivial;
            for (std::size_t m = 1; m < count; ++m)
                if (cnBuf[m]->trivial != trivCx)
                    return false;
            if (!trivCx) {
                for (std::size_t m = 0; m < count; ++m) {
                    const NoiseContext::CxNoise &cn = *cnBuf[m];
                    const bool lo0 = lo0Buf[m] != 0;
                    lamBuf[m] = cn.err;
                    gABuf[m] = lo0 ? cn.gammaLo : cn.gammaHi;
                    cABuf[m] = lo0 ? cn.cohLo : cn.cohHi;
                    gBBuf[m] = lo0 ? cn.gammaHi : cn.gammaLo;
                    cBBuf[m] = lo0 ? cn.cohHi : cn.cohLo;
                }
                bdm.applyDepolThermal2qPerMember(
                    lamBuf.data(), op.q0, gABuf.data(), cABuf.data(),
                    op.q1, gBBuf.data(), cBBuf.data());
            }
            break;
          }
          default:
            panic("SimulatedQpu: non-basis gate '" +
                  gateName(op.primary) + "' reached the backend");
        }
    }

    for (std::size_t m = 0; m < count; ++m) {
        JobResult &r = *members[m].out;
        r.shots = members[m].shots;
        r.circuitDurationUs = plans[m]->durationUs;
        bdm.probabilities(static_cast<int>(m), r.probabilities);
        for (int q : plans[m]->measured) {
            const QubitCalibration &qc =
                ctxs[m]->cal.qubits[plans[m]->physOf[q]];
            applyReadoutError(r.probabilities, q, qc.readout);
        }
        r.counts.clear();
        if (members[m].sampleCounts && members[m].shots > 0) {
            r.counts = members[m].rng->multinomial(
                r.probabilities,
                static_cast<uint64_t>(members[m].shots));
        }
    }
    return true;
}

Device
makeIdealDevice(int numQubits, const std::string &name)
{
    Device d;
    d.name = name;
    d.numQubits = numQubits;
    d.processor = "ideal-simulator";
    d.quantumVolume = 1 << numQubits;
    d.topologyName = "All-to-all";
    std::vector<std::pair<int, int>> edges;
    for (int a = 0; a < numQubits; ++a)
        for (int b = a + 1; b < numQubits; ++b)
            edges.push_back({a, b});
    d.coupling = CouplingMap(numQubits, std::move(edges));

    CalibrationSnapshot cal;
    for (int q = 0; q < numQubits; ++q) {
        QubitCalibration qc;
        qc.t1Us = 1e9;
        qc.t2Us = 1e9;
        qc.gate1qError = 0.0;
        qc.readout = {0.0, 0.0};
        cal.qubits.push_back(qc);
    }
    for (const auto &[a, b] : d.coupling.edges()) {
        cal.cxError[{a, b}] = 0.0;
        cal.cxTimeNs[{a, b}] = 300.0;
    }
    d.baseCalibration = cal;

    DriftParams drift;
    drift.errorDriftPerHour = 0.0;
    drift.coherenceDriftPerHour = 0.0;
    drift.calQualitySigma = 0.0;
    drift.latentSigma = 0.0;
    d.drift = drift;

    QueueParams q;
    q.baseWaitS = 0.5;
    q.waitLogSigma = 0.1;
    q.congestionAmplitude = 0.0;
    q.jobOverheadS = 0.5;
    d.queue = q;
    return d;
}

} // namespace eqc
