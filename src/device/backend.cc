#include "device/backend.h"

#include <cmath>

#include "common/logging.h"
#include "quantum/density_matrix.h"
#include "quantum/statevector.h"

namespace eqc {

SimulatedQpu::SimulatedQpu(Device dev, uint64_t seed)
    : dev_(std::move(dev)),
      tracker_(dev_.baseCalibration, dev_.drift,
               Rng(seed).fork("drift:" + dev_.name)),
      queue_(dev_.queue)
{
}

CalibrationSnapshot
SimulatedQpu::reportedCalibration(double tH) const
{
    return tracker_.reported(tH);
}

namespace {

/** Apply thermal relaxation over @p timeUs via the analytic fast path. */
void
applyThermal(DensityMatrix &dm, int qubit, const QubitCalibration &qc,
             double timeUs)
{
    double t2 = std::min(qc.t2Us, 2.0 * qc.t1Us);
    double gamma = 1.0 - std::exp(-timeUs / qc.t1Us);
    double coherence = std::exp(-timeUs / t2);
    dm.applyThermalRelaxation(qubit, gamma, coherence);
}

/** true when the calibration carries effectively no noise. */
bool
isNoiseless(const CalibrationSnapshot &cal)
{
    for (const auto &q : cal.qubits) {
        if (q.gate1qError > 0.0 || q.readout.p01 > 0.0 ||
            q.readout.p10 > 0.0 || q.t1Us < 1e7) {
            return false;
        }
    }
    for (const auto &[k, v] : cal.cxError)
        if (v > 0.0)
            return false;
    return true;
}

} // namespace

JobResult
SimulatedQpu::execute(const TranspiledCircuit &tc,
                      const std::vector<double> &params, int shots,
                      double atTimeH, Rng &rng, bool sampleCounts)
{
    const QuantumCircuit &circuit = tc.compact;
    const CalibrationSnapshot cal = tracker_.actual(atTimeH);
    const int n = circuit.numQubits();
    if (n < 1)
        panic("SimulatedQpu::execute: empty circuit");

    auto physId = [&](int q) { return tc.compactToPhysical[q]; };

    JobResult result;
    result.shots = shots;
    result.circuitDurationUs =
        circuitDurationUs(circuit, cal, tc.compactToPhysical);

    std::vector<int> measured;
    const bool noiseless = isNoiseless(cal);

    if (noiseless) {
        // Pure-state fast path for the ideal baseline.
        Statevector sv(n);
        for (const GateOp &op : circuit.ops()) {
            if (op.type == GateType::MEASURE) {
                measured.push_back(op.qubits[0]);
                continue;
            }
            if (op.type == GateType::BARRIER || op.type == GateType::ID)
                continue;
            std::vector<double> angles;
            for (const ParamExpr &p : op.params)
                angles.push_back(p.evaluate(params));
            std::vector<int> qs(op.qubits.begin(),
                                op.qubits.begin() + op.arity());
            sv.applyGate(gateMatrix(op.type, angles), qs);
        }
        result.probabilities = sv.probabilities();
    } else {
        DensityMatrix dm(n);
        const double t1qUs = cal.gate1qTimeNs / 1000.0;
        for (const GateOp &op : circuit.ops()) {
            if (op.type == GateType::MEASURE) {
                measured.push_back(op.qubits[0]);
                continue;
            }
            if (op.type == GateType::BARRIER)
                continue;
            std::vector<double> angles;
            for (const ParamExpr &p : op.params)
                angles.push_back(p.evaluate(params));
            std::vector<int> qs(op.qubits.begin(),
                                op.qubits.begin() + op.arity());

            if (op.type != GateType::ID)
                dm.applyUnitary(gateMatrix(op.type, angles), qs);

            switch (op.type) {
              case GateType::RZ:
                // Virtual: implemented in software, no noise.
                break;
              case GateType::ID:
              case GateType::SX:
              case GateType::X: {
                const QubitCalibration &qc = cal.qubits[physId(qs[0])];
                if (op.type != GateType::ID &&
                    qc.coherentRxRad != 0.0) {
                    // Coherent miscalibration: every physical X-axis
                    // pulse over/under-rotates by a signed angle.
                    dm.applyUnitary(
                        gateMatrix(GateType::RX, {qc.coherentRxRad}),
                        qs);
                }
                applyThermal(dm, qs[0], qc, t1qUs);
                if (op.type != GateType::ID && qc.gate1qError > 0.0)
                    dm.applyDepolarizing1q(qc.gate1qError, qs[0]);
                break;
              }
              case GateType::CX: {
                int pa = physId(qs[0]), pb = physId(qs[1]);
                double err = cal.cxErrorFor(pa, pb);
                double durUs = cal.cxTimeFor(pa, pb) / 1000.0;
                double phase = cal.cxPhaseFor(pa, pb);
                if (phase != 0.0) {
                    // Residual ZZ phase accompanying the CX pulse.
                    dm.applyUnitary(gateMatrix(GateType::RZZ, {phase}),
                                    qs);
                }
                if (err > 0.0)
                    dm.applyDepolarizing2q(err, qs[0], qs[1]);
                applyThermal(dm, qs[0], cal.qubits[pa], durUs);
                applyThermal(dm, qs[1], cal.qubits[pb], durUs);
                break;
              }
              default:
                panic("SimulatedQpu: non-basis gate '" +
                      gateName(op.type) + "' reached the backend");
            }
        }
        result.probabilities = dm.probabilities();
        // SPAM: per-qubit readout confusion on the measured qubits.
        for (int q : measured) {
            const QubitCalibration &qc = cal.qubits[physId(q)];
            applyReadoutError(result.probabilities, q, qc.readout);
        }
    }

    if (sampleCounts && shots > 0)
        result.counts = rng.multinomial(result.probabilities,
                                        static_cast<uint64_t>(shots));
    return result;
}

Device
makeIdealDevice(int numQubits, const std::string &name)
{
    Device d;
    d.name = name;
    d.numQubits = numQubits;
    d.processor = "ideal-simulator";
    d.quantumVolume = 1 << numQubits;
    d.topologyName = "All-to-all";
    std::vector<std::pair<int, int>> edges;
    for (int a = 0; a < numQubits; ++a)
        for (int b = a + 1; b < numQubits; ++b)
            edges.push_back({a, b});
    d.coupling = CouplingMap(numQubits, std::move(edges));

    CalibrationSnapshot cal;
    for (int q = 0; q < numQubits; ++q) {
        QubitCalibration qc;
        qc.t1Us = 1e9;
        qc.t2Us = 1e9;
        qc.gate1qError = 0.0;
        qc.readout = {0.0, 0.0};
        cal.qubits.push_back(qc);
    }
    for (const auto &[a, b] : d.coupling.edges()) {
        cal.cxError[{a, b}] = 0.0;
        cal.cxTimeNs[{a, b}] = 300.0;
    }
    d.baseCalibration = cal;

    DriftParams drift;
    drift.errorDriftPerHour = 0.0;
    drift.coherenceDriftPerHour = 0.0;
    drift.calQualitySigma = 0.0;
    drift.latentSigma = 0.0;
    d.drift = drift;

    QueueParams q;
    q.baseWaitS = 0.5;
    q.waitLogSigma = 0.1;
    q.congestionAmplitude = 0.0;
    q.jobOverheadS = 0.5;
    d.queue = q;
    return d;
}

} // namespace eqc
