#include "device/backend.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "quantum/density_matrix.h"
#include "quantum/statevector.h"

namespace eqc {

/** One precompiled gate of an ExecPlan (see SimulatedQpu::ExecPlan). */
struct PlannedOp
{
    GateType type = GateType::ID;
    bool twoQubit = false;
    /** Unitary is diagonal: entries[] holds only the diagonal. */
    bool diagonal = false;
    /** Angles reference the parameter table: entries rebuilt per job. */
    bool symbolic = false;
    int q0 = -1, q1 = -1; ///< compact qubits
    int p0 = -1, p1 = -1; ///< physical ids (calibration lookups)
    int numParams = 0;
    ParamExpr params[3];
    /** gateEntries() layout, prebuilt when !symbolic. */
    Complex entries[16];
};

struct SimulatedQpu::ExecPlan
{
    int numQubits = 0;
    std::vector<PlannedOp> ops;
    /** MEASURE targets (compact qubits) in program order. */
    std::vector<int> measured;
    /** Exact structural identity, checked on every cache hit. */
    std::vector<uint64_t> signature;
};

namespace {

/**
 * Feed every word of a circuit's structural identity (width, parameter
 * table, physical mapping, each op with its angle expressions) to @p f.
 * Used twice per execute: once hashing, once verifying the cached plan
 * — both passes allocation-free.
 */
template <typename Fn>
void
forEachSignatureWord(const TranspiledCircuit &tc, Fn &&f)
{
    const QuantumCircuit &c = tc.compact;
    f(static_cast<uint64_t>(c.numQubits()));
    f(static_cast<uint64_t>(c.numParams()));
    for (int p : tc.compactToPhysical)
        f(static_cast<uint64_t>(p) + 1);
    for (const GateOp &op : c.ops()) {
        f((static_cast<uint64_t>(op.type) << 32) |
          (static_cast<uint64_t>(static_cast<uint16_t>(op.qubits[0] + 1))
           << 16) |
          static_cast<uint64_t>(static_cast<uint16_t>(op.qubits[1] + 1)));
        for (const ParamExpr &pe : op.params) {
            f(static_cast<uint64_t>(static_cast<int64_t>(pe.index)));
            uint64_t bits;
            std::memcpy(&bits, &pe.scale, sizeof(bits));
            f(bits);
            std::memcpy(&bits, &pe.offset, sizeof(bits));
            f(bits);
        }
    }
}

uint64_t
signatureHash(const TranspiledCircuit &tc)
{
    uint64_t h = 0xCBF29CE484222325ULL; // FNV-1a 64
    forEachSignatureWord(tc, [&](uint64_t w) {
        h ^= w;
        h *= 0x100000001B3ULL;
    });
    return h;
}

bool
signatureMatches(const TranspiledCircuit &tc,
                 const std::vector<uint64_t> &sig)
{
    bool match = true;
    std::size_t i = 0;
    forEachSignatureWord(tc, [&](uint64_t w) {
        if (match && (i >= sig.size() || sig[i] != w))
            match = false;
        ++i;
    });
    return match && i == sig.size();
}

} // namespace

SimulatedQpu::SimulatedQpu(Device dev, uint64_t seed)
    : dev_(std::move(dev)),
      tracker_(dev_.baseCalibration, dev_.drift,
               Rng(seed).fork("drift:" + dev_.name)),
      queue_(dev_.queue)
{
}

SimulatedQpu::~SimulatedQpu() = default;

SimulatedQpu::SimulatedQpu(SimulatedQpu &&other) noexcept
    : dev_(std::move(other.dev_)),
      tracker_(std::move(other.tracker_)),
      queue_(std::move(other.queue_)),
      planCache_(std::move(other.planCache_))
{
}

std::shared_ptr<const SimulatedQpu::ExecPlan>
SimulatedQpu::planFor(const TranspiledCircuit &tc)
{
    const uint64_t key = signatureHash(tc);
    {
        std::lock_guard<std::mutex> lk(planMu_);
        auto it = planCache_.find(key);
        if (it != planCache_.end() &&
            signatureMatches(tc, it->second->signature)) {
            return it->second;
        }
    }

    auto plan = std::make_shared<ExecPlan>();
    plan->numQubits = tc.compact.numQubits();
    forEachSignatureWord(
        tc, [&](uint64_t w) { plan->signature.push_back(w); });
    for (const GateOp &op : tc.compact.ops()) {
        if (op.type == GateType::MEASURE) {
            plan->measured.push_back(op.qubits[0]);
            continue;
        }
        if (op.type == GateType::BARRIER)
            continue;
        PlannedOp po;
        po.type = op.type;
        po.twoQubit = gateArity(op.type) == 2;
        po.diagonal = isDiagonalGate(op.type);
        po.q0 = op.qubits[0];
        po.p0 = tc.compactToPhysical[po.q0];
        if (po.twoQubit) {
            po.q1 = op.qubits[1];
            po.p1 = tc.compactToPhysical[po.q1];
        }
        po.numParams = static_cast<int>(op.params.size());
        for (int i = 0; i < po.numParams; ++i) {
            po.params[i] = op.params[i];
            if (op.params[i].isSymbolic())
                po.symbolic = true;
        }
        if (!po.symbolic) {
            double angles[3] = {0, 0, 0};
            for (int i = 0; i < po.numParams; ++i)
                angles[i] = po.params[i].evaluate({});
            gateEntries(po.type, angles, po.entries);
        }
        plan->ops.push_back(po);
    }

    std::lock_guard<std::mutex> lk(planMu_);
    // Possibly racing another builder, or evicting a hash collision;
    // either way the freshly built plan is a correct occupant, and
    // shared ownership keeps any in-flight reader's plan alive.
    planCache_[key] = plan;
    return plan;
}

CalibrationSnapshot
SimulatedQpu::reportedCalibration(double tH) const
{
    return tracker_.reported(tH);
}

namespace {

/** Apply thermal relaxation over @p timeUs via the analytic fast path. */
void
applyThermal(DensityMatrix &dm, int qubit, const QubitCalibration &qc,
             double timeUs)
{
    double t2 = std::min(qc.t2Us, 2.0 * qc.t1Us);
    double gamma = 1.0 - std::exp(-timeUs / qc.t1Us);
    double coherence = std::exp(-timeUs / t2);
    dm.applyThermalRelaxation(qubit, gamma, coherence);
}

/** true when the calibration carries effectively no noise. */
bool
isNoiseless(const CalibrationSnapshot &cal)
{
    for (const auto &q : cal.qubits) {
        if (q.gate1qError > 0.0 || q.readout.p01 > 0.0 ||
            q.readout.p10 > 0.0 || q.t1Us < 1e7) {
            return false;
        }
    }
    for (const auto &[k, v] : cal.cxError)
        if (v > 0.0)
            return false;
    return true;
}

} // namespace

JobResult
SimulatedQpu::execute(const TranspiledCircuit &tc,
                      const std::vector<double> &params, int shots,
                      double atTimeH, Rng &rng, bool sampleCounts)
{
    const CalibrationSnapshot cal = tracker_.actual(atTimeH);
    const int n = tc.compact.numQubits();
    if (n < 1)
        panic("SimulatedQpu::execute: empty circuit");

    const std::shared_ptr<const ExecPlan> planPtr = planFor(tc);
    const ExecPlan &plan = *planPtr;

    JobResult result;
    result.shots = shots;
    result.circuitDurationUs =
        circuitDurationUs(tc.compact, cal, tc.compactToPhysical);

    const bool noiseless = isNoiseless(cal);

    // Per-op unitary entries: precompiled for fixed angles, rebuilt in
    // place (no allocation) when the op references the parameter table.
    Complex scratch[16];
    double angles[3];
    auto entriesOf = [&](const PlannedOp &op) -> const Complex * {
        if (!op.symbolic)
            return op.entries;
        for (int i = 0; i < op.numParams; ++i)
            angles[i] = op.params[i].evaluate(params);
        gateEntries(op.type, angles, scratch);
        return scratch;
    };

    if (noiseless) {
        // Pure-state fast path for the ideal baseline.
        Statevector sv(n);
        for (const PlannedOp &op : plan.ops) {
            if (op.type == GateType::ID)
                continue;
            const Complex *u = entriesOf(op);
            if (op.twoQubit) {
                op.diagonal ? sv.applyDiag2(u, op.q0, op.q1)
                            : sv.applyGate2(u, op.q0, op.q1);
            } else {
                op.diagonal ? sv.applyDiag1(u, op.q0)
                            : sv.applyGate1(u, op.q0);
            }
        }
        result.probabilities = sv.probabilities();
    } else {
        DensityMatrix dm(n);
        const double t1qUs = cal.gate1qTimeNs / 1000.0;
        for (const PlannedOp &op : plan.ops) {
            if (op.type != GateType::ID) {
                const Complex *u = entriesOf(op);
                if (op.twoQubit) {
                    op.diagonal ? dm.applyDiag2(u, op.q0, op.q1)
                                : dm.applyGate2(u, op.q0, op.q1);
                } else {
                    op.diagonal ? dm.applyDiag1(u, op.q0)
                                : dm.applyGate1(u, op.q0);
                }
            }

            switch (op.type) {
              case GateType::RZ:
                // Virtual: implemented in software, no noise.
                break;
              case GateType::ID:
              case GateType::SX:
              case GateType::X: {
                const QubitCalibration &qc = cal.qubits[op.p0];
                if (op.type != GateType::ID &&
                    qc.coherentRxRad != 0.0) {
                    // Coherent miscalibration: every physical X-axis
                    // pulse over/under-rotates by a signed angle.
                    const double rxAngle[1] = {qc.coherentRxRad};
                    Complex rx[4];
                    gateEntries(GateType::RX, rxAngle, rx);
                    dm.applyGate1(rx, op.q0);
                }
                applyThermal(dm, op.q0, qc, t1qUs);
                if (op.type != GateType::ID && qc.gate1qError > 0.0)
                    dm.applyDepolarizing1q(qc.gate1qError, op.q0);
                break;
              }
              case GateType::CX: {
                double err = cal.cxErrorFor(op.p0, op.p1);
                double durUs = cal.cxTimeFor(op.p0, op.p1) / 1000.0;
                double phase = cal.cxPhaseFor(op.p0, op.p1);
                if (phase != 0.0) {
                    // Residual ZZ phase accompanying the CX pulse.
                    const double zzAngle[1] = {phase};
                    Complex zz[4];
                    gateEntries(GateType::RZZ, zzAngle, zz);
                    dm.applyDiag2(zz, op.q0, op.q1);
                }
                if (err > 0.0)
                    dm.applyDepolarizing2q(err, op.q0, op.q1);
                applyThermal(dm, op.q0, cal.qubits[op.p0], durUs);
                applyThermal(dm, op.q1, cal.qubits[op.p1], durUs);
                break;
              }
              default:
                panic("SimulatedQpu: non-basis gate '" +
                      gateName(op.type) + "' reached the backend");
            }
        }
        result.probabilities = dm.probabilities();
        // SPAM: per-qubit readout confusion on the measured qubits.
        for (int q : plan.measured) {
            const QubitCalibration &qc =
                cal.qubits[tc.compactToPhysical[q]];
            applyReadoutError(result.probabilities, q, qc.readout);
        }
    }

    if (sampleCounts && shots > 0)
        result.counts = rng.multinomial(result.probabilities,
                                        static_cast<uint64_t>(shots));
    return result;
}

Device
makeIdealDevice(int numQubits, const std::string &name)
{
    Device d;
    d.name = name;
    d.numQubits = numQubits;
    d.processor = "ideal-simulator";
    d.quantumVolume = 1 << numQubits;
    d.topologyName = "All-to-all";
    std::vector<std::pair<int, int>> edges;
    for (int a = 0; a < numQubits; ++a)
        for (int b = a + 1; b < numQubits; ++b)
            edges.push_back({a, b});
    d.coupling = CouplingMap(numQubits, std::move(edges));

    CalibrationSnapshot cal;
    for (int q = 0; q < numQubits; ++q) {
        QubitCalibration qc;
        qc.t1Us = 1e9;
        qc.t2Us = 1e9;
        qc.gate1qError = 0.0;
        qc.readout = {0.0, 0.0};
        cal.qubits.push_back(qc);
    }
    for (const auto &[a, b] : d.coupling.edges()) {
        cal.cxError[{a, b}] = 0.0;
        cal.cxTimeNs[{a, b}] = 300.0;
    }
    d.baseCalibration = cal;

    DriftParams drift;
    drift.errorDriftPerHour = 0.0;
    drift.coherenceDriftPerHour = 0.0;
    drift.calQualitySigma = 0.0;
    drift.latentSigma = 0.0;
    d.drift = drift;

    QueueParams q;
    q.baseWaitS = 0.5;
    q.waitLogSigma = 0.1;
    q.congestionAmplitude = 0.0;
    q.jobOverheadS = 0.5;
    d.queue = q;
    return d;
}

} // namespace eqc
