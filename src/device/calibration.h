/**
 * @file
 * Calibration data: what a QPU reports about itself after each
 * calibration cycle — T1/T2 per qubit, gate fidelities, gate times and
 * readout error. These are exactly the quantities the paper's Eq. 2
 * quality model consumes, and the quantities our noise builder turns
 * into Kraus channels.
 */

#ifndef EQC_DEVICE_CALIBRATION_H
#define EQC_DEVICE_CALIBRATION_H

#include <map>
#include <utility>
#include <vector>

#include "circuit/circuit.h"
#include "quantum/kraus.h"

namespace eqc {

/** Per-qubit calibration record. */
struct QubitCalibration
{
    double t1Us = 100.0;       ///< relaxation time
    double t2Us = 80.0;        ///< dephasing time
    double gate1qError = 3e-4; ///< SX/X depolarizing error
    ReadoutError readout;      ///< measurement confusion probabilities
    /**
     * Coherent over/under-rotation (radians) applied with every SX/X
     * pulse. Signed and device-specific: this is the miscalibration
     * that *biases* learned VQA parameters (the device-specific bias of
     * paper Sec. I), unlike depolarizing noise which merely attenuates
     * gradients. Not part of what providers report.
     */
    double coherentRxRad = 0.0;
};

/** Full device calibration snapshot at one point in time. */
struct CalibrationSnapshot
{
    /** Time (hours) the snapshot was taken. */
    double timeH = 0.0;

    std::vector<QubitCalibration> qubits;

    /** CX error per coupled pair, keyed by (min, max) qubit index. */
    std::map<std::pair<int, int>, double> cxError;

    /** CX duration per coupled pair in nanoseconds. */
    std::map<std::pair<int, int>, double> cxTimeNs;

    /**
     * Coherent ZZ-phase error (radians) accompanying each CX, per
     * coupled pair. Signed; unreported (see coherentRxRad).
     */
    std::map<std::pair<int, int>, double> cxPhaseRad;

    /** Duration of SX/X gates in nanoseconds. */
    double gate1qTimeNs = 35.0;

    /** Measurement duration in nanoseconds. */
    double readoutTimeNs = 4000.0;

    /** CX error for an (unordered) pair; panics on unknown pairs. */
    double cxErrorFor(int a, int b) const;

    /** CX duration for an (unordered) pair in nanoseconds. */
    double cxTimeFor(int a, int b) const;

    /** Coherent CX phase error for a pair (0 when absent). */
    double cxPhaseFor(int a, int b) const;

    /// @name Aggregates used by the Eq. 2 quality model
    /// @{
    double avgT1Us() const;
    double avgT2Us() const;
    double avgGate1qError() const;
    double avgCxError() const;
    double avgReadoutError() const;
    double avgCxTimeNs() const;
    /// @}
};

/**
 * Estimated wall-clock duration of one execution of @p circuit in
 * microseconds, using ASAP scheduling with per-gate durations from
 * @p cal (RZ is virtual and free; measurement costs readoutTimeNs).
 *
 * @param circuit compacted physical circuit
 * @param qubitIds physical qubit id of each circuit qubit (for per-pair
 *        CX durations); empty means identity
 */
double circuitDurationUs(const QuantumCircuit &circuit,
                         const CalibrationSnapshot &cal,
                         const std::vector<int> &qubitIds = {});

} // namespace eqc

#endif // EQC_DEVICE_CALIBRATION_H
