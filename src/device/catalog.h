/**
 * @file
 * The device catalog: all 11 IBMQ platforms of the paper's Table I with
 * synthetic-but-shaped calibrations, drift personalities and queue
 * personalities (see DESIGN.md "Substitutions" for how the numbers were
 * chosen to reproduce the paper's relative device behaviour).
 */

#ifndef EQC_DEVICE_CATALOG_H
#define EQC_DEVICE_CATALOG_H

#include <vector>

#include "device/device.h"

namespace eqc {

/**
 * Build the full Table I catalog. Deterministic for a given seed; the
 * default seed reproduces the numbers quoted in EXPERIMENTS.md.
 */
std::vector<Device> ibmqCatalog(uint64_t seed = 2022);

/** Look up a catalog device by name; fatals on unknown names. */
Device deviceByName(const std::string &name, uint64_t seed = 2022);

/**
 * The ensemble used in the paper's evaluation: all Table I devices
 * except Manhattan (the paper deploys EQC on 10 IBMQ machines and only
 * reports Manhattan as a single-device training casualty).
 */
std::vector<Device> evaluationEnsemble(uint64_t seed = 2022);

} // namespace eqc

#endif // EQC_DEVICE_CATALOG_H
