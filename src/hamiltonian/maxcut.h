/**
 * @file
 * MaxCut -> Ising Hamiltonian mapping (paper Eqs. 5-7):
 *   H = - sum_{(j,k) in E} 1/2 (1 - Zj Zk)
 * minimizing <H> maximizes the cut. Includes a brute-force classical
 * solver for ground-truth cut values on small instances.
 */

#ifndef EQC_HAMILTONIAN_MAXCUT_H
#define EQC_HAMILTONIAN_MAXCUT_H

#include <cstdint>
#include <utility>
#include <vector>

#include "quantum/pauli.h"

namespace eqc {

/** An undirected MaxCut instance with unit edge weights. */
struct MaxCutInstance
{
    int numNodes = 0;
    std::vector<std::pair<int, int>> edges;
};

/** The paper's 4-node unweighted ring instance. */
MaxCutInstance ringMaxCut4();

/**
 * Ising form of Eq. 7: per edge a -1/2 identity offset and a +1/2 ZjZk
 * term, so <H> in [-|E|, 0] and min <H> = -maxcut.
 */
PauliSum maxcutHamiltonian(const MaxCutInstance &instance);

/** Cut value of one partition assignment (bit q = side of node q). */
int cutValue(const MaxCutInstance &instance, uint64_t assignment);

/** Exhaustive optimum (instances up to ~24 nodes). */
int bruteForceMaxCut(const MaxCutInstance &instance);

} // namespace eqc

#endif // EQC_HAMILTONIAN_MAXCUT_H
