/**
 * @file
 * Exact reference energies for small Hamiltonians: sparse Pauli-sum
 * application plus a shifted power iteration for the minimum eigenvalue
 * (the "Ground Energy" lines of the paper's Figs. 6 and 9).
 */

#ifndef EQC_HAMILTONIAN_EXACT_H
#define EQC_HAMILTONIAN_EXACT_H

#include "quantum/pauli.h"

namespace eqc {

/**
 * y = H x for a Pauli-sum Hamiltonian without building the dense matrix.
 * @param h Hamiltonian
 * @param x input vector of dimension 2^n
 */
CVector applyPauliSum(const PauliSum &h, const CVector &x);

/**
 * Minimum eigenvalue of @p h via power iteration on (sigma I - H) with
 * sigma = sum |coefficients| (a Gershgorin-style spectral bound).
 *
 * @param h Hamiltonian (n <= 20)
 * @param maxIter iteration cap
 * @param tol Rayleigh-quotient convergence tolerance
 */
double minEigenvalue(const PauliSum &h, int maxIter = 5000,
                     double tol = 1e-12);

/** Maximum eigenvalue (same method on H - sigma I negated). */
double maxEigenvalue(const PauliSum &h, int maxIter = 5000,
                     double tol = 1e-12);

} // namespace eqc

#endif // EQC_HAMILTONIAN_EXACT_H
