#include "hamiltonian/exact.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace eqc {

CVector
applyPauliSum(const PauliSum &h, const CVector &x)
{
    const uint64_t dim = x.size();
    CVector y(dim, Complex(0, 0));
    static const Complex iPow[4] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    for (const PauliTerm &t : h.terms()) {
        const uint64_t xmask = t.pauli.xMask();
        const uint64_t zmask = t.pauli.zMask();
        const int yCount =
            static_cast<int>(__builtin_popcountll(xmask & zmask));
        const Complex global = iPow[yCount & 3] * Complex(t.coefficient, 0);
        for (uint64_t b = 0; b < dim; ++b) {
            if (x[b] == Complex(0, 0))
                continue;
            int par = __builtin_popcountll(b & zmask) & 1;
            Complex lambda = par ? -global : global;
            // P|b> = lambda |b ^ xmask>.
            y[b ^ xmask] += lambda * x[b];
        }
    }
    return y;
}

namespace {

double
extremalEigenvalue(const PauliSum &h, bool minimum, int maxIter,
                   double tol)
{
    const int n = h.numQubits();
    if (n < 1 || n > 20)
        fatal("extremalEigenvalue: unsupported qubit count");
    const uint64_t dim = uint64_t{1} << n;
    const double sigma = h.coefficientNorm() + 1.0;

    // Power iteration on (sigma I -+ H); dominant eigenvector is the
    // ground (resp. top) state of H.
    Rng rng(0xE19C);
    CVector v(dim);
    double norm = 0.0;
    for (auto &a : v) {
        a = Complex(rng.normal(), rng.normal());
        norm += std::norm(a);
    }
    norm = std::sqrt(norm);
    for (auto &a : v)
        a /= norm;

    double prev = 0.0;
    for (int it = 0; it < maxIter; ++it) {
        CVector hv = applyPauliSum(h, v);
        CVector w(dim);
        for (uint64_t i = 0; i < dim; ++i)
            w[i] = minimum ? sigma * v[i] - hv[i]
                           : sigma * v[i] + hv[i];
        double wn = 0.0;
        for (const auto &a : w)
            wn += std::norm(a);
        wn = std::sqrt(wn);
        if (wn <= 0.0)
            panic("extremalEigenvalue: vector annihilated");
        for (auto &a : w)
            a /= wn;
        // Rayleigh quotient of H on the current iterate.
        CVector hw = applyPauliSum(h, w);
        Complex num(0, 0);
        for (uint64_t i = 0; i < dim; ++i)
            num += std::conj(w[i]) * hw[i];
        double lambda = num.real();
        if (it > 0 && std::fabs(lambda - prev) < tol)
            return lambda;
        prev = lambda;
        v = std::move(w);
    }
    return prev;
}

} // namespace

double
minEigenvalue(const PauliSum &h, int maxIter, double tol)
{
    return extremalEigenvalue(h, true, maxIter, tol);
}

double
maxEigenvalue(const PauliSum &h, int maxIter, double tol)
{
    return extremalEigenvalue(h, false, maxIter, tol);
}

} // namespace eqc
