#include "hamiltonian/heisenberg.h"

#include "common/logging.h"

namespace eqc {

PauliSum
heisenbergHamiltonian(int numQubits,
                      const std::vector<std::pair<int, int>> &edges,
                      double j, double b)
{
    PauliSum h(numQubits);
    for (const auto &[a, c] : edges) {
        if (a < 0 || c < 0 || a >= numQubits || c >= numQubits || a == c)
            fatal("heisenbergHamiltonian: invalid edge");
        for (Pauli p : {Pauli::X, Pauli::Y, Pauli::Z}) {
            PauliString s(numQubits);
            s.set(a, p);
            s.set(c, p);
            h.add(j, s);
        }
    }
    if (b != 0.0) {
        for (int q = 0; q < numQubits; ++q)
            h.add(b, PauliString::single(numQubits, q, Pauli::Z));
    }
    return h;
}

std::vector<std::pair<int, int>>
squareLattice4()
{
    return {{0, 1}, {1, 2}, {2, 3}, {0, 3}};
}

} // namespace eqc
