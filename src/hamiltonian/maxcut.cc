#include "hamiltonian/maxcut.h"

#include "common/logging.h"

namespace eqc {

MaxCutInstance
ringMaxCut4()
{
    return {4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}}};
}

PauliSum
maxcutHamiltonian(const MaxCutInstance &instance)
{
    if (instance.numNodes < 2)
        fatal("maxcutHamiltonian: need at least two nodes");
    PauliSum h(instance.numNodes);
    for (const auto &[a, b] : instance.edges) {
        if (a < 0 || b < 0 || a >= instance.numNodes ||
            b >= instance.numNodes || a == b) {
            fatal("maxcutHamiltonian: invalid edge");
        }
        h.add(-0.5, PauliString(instance.numNodes)); // identity offset
        PauliString zz(instance.numNodes);
        zz.set(a, Pauli::Z);
        zz.set(b, Pauli::Z);
        h.add(0.5, zz);
    }
    return h;
}

int
cutValue(const MaxCutInstance &instance, uint64_t assignment)
{
    int cut = 0;
    for (const auto &[a, b] : instance.edges) {
        bool sa = (assignment >> a) & 1;
        bool sb = (assignment >> b) & 1;
        if (sa != sb)
            ++cut;
    }
    return cut;
}

int
bruteForceMaxCut(const MaxCutInstance &instance)
{
    if (instance.numNodes > 24)
        fatal("bruteForceMaxCut: instance too large");
    int best = 0;
    uint64_t limit = uint64_t{1} << instance.numNodes;
    for (uint64_t a = 0; a < limit; ++a)
        best = std::max(best, cutValue(instance, a));
    return best;
}

} // namespace eqc
