/**
 * @file
 * Heisenberg-model Hamiltonian builder (paper Eq. 3):
 *   H = J * sum_{(i,j) in E} (XiXj + YiYj + ZiZj) + B * sum_i Zi
 * The paper's VQE workload uses the 4-qubit square lattice (a 4-cycle)
 * with J = B = 1, following Kandala et al. (Nature 549, 2017).
 */

#ifndef EQC_HAMILTONIAN_HEISENBERG_H
#define EQC_HAMILTONIAN_HEISENBERG_H

#include <utility>
#include <vector>

#include "quantum/pauli.h"

namespace eqc {

/**
 * Build the Heisenberg Hamiltonian on an arbitrary interaction graph.
 *
 * @param numQubits number of spins
 * @param edges exchange-coupled pairs
 * @param j spin-spin coupling strength
 * @param b Z-field strength
 */
PauliSum heisenbergHamiltonian(
    int numQubits, const std::vector<std::pair<int, int>> &edges,
    double j = 1.0, double b = 1.0);

/** The paper's 4-node square lattice: V=[0..3], E = 4-cycle. */
std::vector<std::pair<int, int>> squareLattice4();

} // namespace eqc

#endif // EQC_HAMILTONIAN_HEISENBERG_H
