/**
 * @file
 * Extension example: the paper's third VQA family (Sec. III-A) — a
 * quantum neural network trained with dataset-level parallelism. Each
 * EQC task computes the gradient of one (parameter, data point) pair;
 * the master accumulates the dataset average asynchronously.
 *
 * Build & run:  ./build/examples/qnn_classifier
 */

#include <cstdio>

#include "core/qnn_executor.h"
#include "device/catalog.h"
#include "vqa/qnn.h"

int
main()
{
    using namespace eqc;

    QnnProblem problem = makeSineClassifier(12, 5);
    std::printf("QNN: %d qubits, %d parameters, %zu samples "
                "(sign-of-sine labels)\n\n",
                problem.numQubits, problem.numParams(),
                problem.dataset.size());
    std::printf("initial MSE: %.4f\n",
                qnnMseIdeal(problem, problem.initialParams));

    std::vector<Device> ensemble = {
        deviceByName("ibmq_bogota"), deviceByName("ibmq_manila"),
        deviceByName("ibmq_quito"), deviceByName("ibmq_belem"),
        deviceByName("ibmq_lima"),
    };

    QnnOptions opts;
    opts.epochs = 30;
    opts.weightBounds = {0.5, 1.5};
    opts.seed = 4;
    QnnTrace trace = runQnnEqcVirtual(problem, ensemble, opts);

    std::printf("trained %zu epochs at %.1f epochs/hour (%.2f h)\n",
                trace.epochs.size(), trace.epochsPerHour,
                trace.totalHours);
    std::printf("MSE by epoch: ");
    for (std::size_t i = 0; i < trace.epochs.size(); i += 5)
        std::printf("%.3f ", trace.epochs[i].mseIdeal);
    std::printf("-> %.4f\n\n", trace.epochs.back().mseIdeal);

    std::printf("%-10s %-8s %-10s %-8s\n", "x", "label", "predict",
                "correct");
    int correct = 0;
    for (const QnnSample &s : problem.dataset) {
        double y = qnnPredictIdeal(problem, s, trace.finalParams);
        bool ok = (y >= 0) == (s.label >= 0);
        correct += ok;
        std::printf("%-10.3f %-8.1f %-10.3f %-8s\n", s.features[0],
                    s.label, y, ok ? "yes" : "NO");
    }
    std::printf("\nclassification accuracy: %d/%zu\n", correct,
                problem.dataset.size());
    return 0;
}
