/**
 * @file
 * Quickstart: the 5-minute tour of the EQC library.
 *
 *  1. Build a circuit and run it on the ideal simulator.
 *  2. Transpile it for a real device topology and run it under that
 *     device's noise model.
 *  3. Train a small VQE, first on one device, then on an EQC ensemble
 *     submitted through the eqc::Runtime engine API, with a
 *     TraceObserver streaming live progress.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "circuit/ansatz.h"
#include "core/runtime.h"
#include "device/catalog.h"
#include "hamiltonian/exact.h"
#include "vqa/problem.h"

namespace {

/** Streams training progress to stdout every few epochs. */
class ProgressObserver : public eqc::TraceObserver
{
  public:
    void
    onEpoch(eqc::RunContext &, eqc::EpochRecord &rec) override
    {
        if (rec.epoch % 10 == 0)
            std::printf("  [observer] epoch %3d at t=%6.2f h: "
                        "E = %.3f a.u.\n",
                        rec.epoch, rec.timeH, rec.energyDevice);
    }
};

} // namespace

int
main()
{
    using namespace eqc;

    // ------------------------------------------------------------------
    // 1. A GHZ circuit on the ideal simulator.
    // ------------------------------------------------------------------
    std::printf("== 1. ideal simulation ==\n");
    QuantumCircuit ghz = ghzCircuit(3);
    Statevector sv = simulateIdeal(ghz);
    auto probs = sv.probabilities();
    std::printf("GHZ-3 ideal: P(000) = %.3f, P(111) = %.3f\n",
                probs[0], probs[7]);

    // ------------------------------------------------------------------
    // 2. The same circuit on a simulated IBMQ backend.
    // ------------------------------------------------------------------
    std::printf("\n== 2. noisy execution on ibmq_belem ==\n");
    Device belem = deviceByName("ibmq_belem");
    TranspiledCircuit tc = transpile(ghz, belem.coupling);
    std::printf("transpiled: %d swaps, G1=%d, G2=%d, critical depth %d\n",
                tc.swapCount, tc.counts.g1, tc.counts.g2,
                tc.criticalDepth);

    SimulatedQpu qpu(belem, /*seed=*/42);
    Rng rng(42);
    JobResult job = qpu.execute(tc, {}, 8192, /*atTimeH=*/1.0, rng,
                                /*sampleCounts=*/true);
    uint64_t all1 = 0;
    for (int l = 0; l < 3; ++l)
        all1 |= uint64_t{1} << tc.logicalToCompact[l];
    std::printf("noisy:  P(000) = %.3f, P(111) = %.3f "
                "(the rest is device error)\n",
                job.probabilities[0], job.probabilities[all1]);

    // ------------------------------------------------------------------
    // 3. VQE: single device vs EQC ensemble.
    // ------------------------------------------------------------------
    std::printf("\n== 3. VQE on one device vs the EQC ensemble ==\n");
    VqaProblem problem = makeHeisenbergVqe();
    std::printf("problem: %s, %d parameters, ground energy %.3f a.u.\n",
                problem.name.c_str(), problem.numParams(),
                minEigenvalue(problem.hamiltonian));

    TrainerOptions single;
    single.epochs = 40;
    single.seed = 7;
    TrainingTrace bogota =
        trainSingleDevice(problem, deviceByName("ibmq_bogota"), single);
    std::printf("ibmq_bogota alone: %zu epochs in %.1f h "
                "(%.1f epochs/hour), final energy %.3f a.u.\n",
                bogota.epochs.size(), bogota.totalHours,
                bogota.epochsPerHour, finalEnergy(bogota, 5));

    // Submit the ensemble run through the Runtime: pick an engine by
    // name ("virtual" = deterministic replay, "threaded" = real
    // std::thread fleet), get a JobHandle back, attach observers for
    // streaming telemetry.
    EqcOptions opts;
    opts.master.epochs = 40;
    opts.master.weightBounds = {0.5, 1.5}; // the paper's Sec. V-D knob
    opts.seed = 7;
    opts.engine = "virtual";

    Runtime runtime;
    ProgressObserver progress;
    JobHandle handle =
        runtime.submit(problem, evaluationEnsemble(), opts, {&progress});
    EqcTrace eqc = handle.take();
    std::printf("EQC (10 devices):  %zu epochs in %.1f h "
                "(%.1f epochs/hour), final energy %.3f a.u.\n",
                eqc.epochs.size(), eqc.totalHours, eqc.epochsPerHour,
                finalEnergy(eqc, 5));
    std::printf("speedup: %.1fx; mean gradient staleness: %.1f "
                "updates\n",
                eqc.epochsPerHour / bogota.epochsPerHour,
                eqc.staleness.mean());
    return 0;
}
