/**
 * @file
 * Systems example: the Ray-style deployment — one real std::thread per
 * client node, a mutex-guarded master, gradients arriving whenever
 * their thread finishes. This is the same MasterNode/ClientNode logic
 * the deterministic benches use, driven by actual OS concurrency.
 *
 * Build & run:  ./build/examples/threaded_ensemble
 */

#include <cstdio>

#include "core/runtime.h"
#include "device/catalog.h"
#include "vqa/problem.h"

int
main()
{
    using namespace eqc;

    VqaProblem problem = makeHeisenbergVqe();
    std::vector<Device> devices = {
        deviceByName("ibmq_bogota"), deviceByName("ibmq_manila"),
        deviceByName("ibmq_quito"), deviceByName("ibmqx2"),
        deviceByName("ibmq_belem"), deviceByName("ibmq_lima"),
    };

    EqcOptions opts;
    opts.master.epochs = 30;
    opts.master.weightBounds = {0.5, 1.5};
    opts.maxHours = 1e9; // wall-clock compute counts as virtual time
    opts.seed = 9;
    opts.engine = "threaded"; // the std::thread fleet engine
    opts.hoursPerWallSecond = 1000.0;

    std::printf("launching %zu client threads (1 virtual hour = 1 ms "
                "wall)...\n",
                devices.size());
    Runtime runtime;
    EqcTrace trace = runtime.submit(problem, devices, opts).take();

    std::printf("done: %zu epochs, final energy %.3f a.u.\n",
                trace.epochs.size(), finalEnergy(trace, 5));
    std::printf("gradient staleness: mean %.1f, max %.0f master "
                "updates\n",
                trace.staleness.mean(), trace.staleness.max());
    std::printf("jobs per device (thread-scheduling dependent):\n");
    for (const auto &[name, jobs] : trace.jobsPerDevice)
        std::printf("  %-18s %5d\n", name.c_str(), jobs);
    std::printf("\nRe-run this example: job counts will differ (real "
                "concurrency),\nbut the energy must converge every "
                "time — the paper's appendix proof\nin action.\n");
    return 0;
}
