/**
 * @file
 * Domain example: estimating the ground energy of a quantum-magnetism
 * model (the paper's Sec. V-B workload) on an adaptive, weighted EQC
 * ensemble — including live handling of a device that degrades
 * mid-training, the scenario that motivates ensemble weighting.
 *
 * Build & run:  ./build/examples/vqe_heisenberg
 */

#include <cstdio>

#include "core/runtime.h"
#include "device/catalog.h"
#include "hamiltonian/exact.h"
#include "hamiltonian/heisenberg.h"
#include "vqa/problem.h"

int
main()
{
    using namespace eqc;

    VqaProblem problem = makeHeisenbergVqe();
    double ground = minEigenvalue(problem.hamiltonian);
    std::printf("4-qubit Heisenberg square lattice, J = B = 1\n");
    std::printf("exact ground energy: %.4f a.u.; Hamiltonian has %zu "
                "Pauli terms in %zu measurement groups\n\n",
                ground, problem.hamiltonian.size(),
                groupQubitwiseCommuting(problem.hamiltonian).size());

    // An ensemble where one member (Casablanca) is drifting badly:
    // exactly the situation the adaptive weighting is built for.
    std::vector<Device> devices = {
        deviceByName("ibmq_bogota"), deviceByName("ibmq_manila"),
        deviceByName("ibmq_quito"), deviceByName("ibmq_belem"),
        deviceByName("ibmq_casablanca"),
    };

    Runtime runtime;
    for (bool weighted : {false, true}) {
        EqcOptions opts;
        opts.master.epochs = 60;
        opts.master.weightBounds =
            weighted ? WeightBounds{0.5, 1.5} : WeightBounds{1.0, 1.0};
        opts.adaptive.enabled = weighted; // cool down unstable members
        opts.seed = 11;
        EqcTrace trace = runtime.submit(problem, devices, opts).take();

        std::printf("== %s ensemble ==\n",
                    weighted ? "weighted [0.5,1.5] + adaptive"
                             : "unweighted");
        std::printf("  final energy (ideal-eval of learned params): "
                    "%.4f a.u. (%.3f%% off the ansatz optimum)\n",
                    finalIdealEnergy(trace, 10),
                    errorVsReference(finalIdealEnergy(trace, 10),
                                     -6.5715));
        std::printf("  speed: %.1f epochs/hour over %.2f hours\n",
                    trace.epochsPerHour, trace.totalHours);
        if (weighted) {
            std::printf("  adaptive cooldowns triggered: %d\n",
                        trace.cooldowns);
            // Show the weight range each device ended up with.
            std::printf("  last recorded weight per client:\n");
            std::vector<double> last(devices.size(), 0.0);
            for (const WeightRecord &w : trace.weights)
                last[w.clientId] = w.weight;
            for (std::size_t i = 0; i < devices.size(); ++i)
                std::printf("    %-18s %.3f\n", devices[i].name.c_str(),
                            last[i]);
        }
        std::printf("\n");
    }
    std::printf("Takeaway: the weighting system discounts the drifting "
                "member's gradients\nand the ensemble converges closer "
                "to the optimum than the unweighted mix.\n");
    return 0;
}
