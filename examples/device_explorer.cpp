/**
 * @file
 * Tooling example: inspect the device catalog the way EQC's master node
 * sees it — topology, calibration, transpilation cost for a target
 * circuit, the Eq. 2 quality score, and how that score degrades as a
 * calibration goes stale.
 *
 * Build & run:  ./build/examples/device_explorer
 */

#include <cstdio>

#include "circuit/ansatz.h"
#include "core/weighting.h"
#include "device/backend.h"
#include "device/catalog.h"

int
main()
{
    using namespace eqc;

    QuantumCircuit target = hardwareEfficientAnsatz(4);
    std::printf("target circuit: the paper's Fig. 8 VQE ansatz "
                "(4 qubits, 16 parameters)\n\n");

    std::printf("%-18s %-16s %5s %6s %4s %4s %8s %10s\n", "device",
                "topology", "deg", "swaps", "G2", "CD", "dur(us)",
                "P_correct");
    for (const Device &d : ibmqCatalog()) {
        TranspiledCircuit tc = transpile(target, d.coupling);
        double p = pCorrect(circuitQuality(tc), d.baseCalibration);
        double dur = circuitDurationUs(tc.compact, d.baseCalibration,
                                       tc.compactToPhysical);
        std::printf("%-18s %-16s %5.2f %6d %4d %4d %8.2f %10.4f\n",
                    d.name.c_str(), d.topologyName.c_str(),
                    d.coupling.averageDegree(), tc.swapCount,
                    tc.counts.g2, tc.criticalDepth, dur, p);
    }

    // How does a device's quality score evolve over three days?
    std::printf("\nP_correct over 72 hours (reported calibration), "
                "ibmq_casablanca vs ibmq_bogota:\n");
    std::printf("%-8s %14s %14s\n", "hour", "casablanca", "bogota");
    Device casa = deviceByName("ibmq_casablanca");
    Device bogota = deviceByName("ibmq_bogota");
    SimulatedQpu qCasa(casa, 5), qBogota(bogota, 5);
    TranspiledCircuit tCasa = transpile(target, casa.coupling);
    TranspiledCircuit tBogota = transpile(target, bogota.coupling);
    for (int h = 0; h <= 72; h += 6) {
        double pc = pCorrect(circuitQuality(tCasa),
                             qCasa.reportedCalibration(h));
        double pb = pCorrect(circuitQuality(tBogota),
                             qBogota.reportedCalibration(h));
        std::printf("%-8d %14.4f %14.4f\n", h, pc, pb);
    }

    std::printf("\nactual vs reported CX error on ibmq_casablanca "
                "(the gap is what Fig. 4's outliers are made of):\n");
    std::printf("%-8s %12s %12s %10s\n", "hour", "reported", "actual",
                "incident");
    for (int h = 0; h <= 72; h += 6) {
        std::printf("%-8d %11.3f%% %11.3f%% %10s\n", h,
                    100.0 * qCasa.reportedCalibration(h).avgCxError(),
                    100.0 * qCasa.tracker().actual(h).avgCxError(),
                    qCasa.tracker().inIncident(h) ? "yes" : "no");
    }
    return 0;
}
