/**
 * @file
 * Domain example: solving MaxCut with QAOA on an EQC ensemble (the
 * paper's Sec. V-E workload), then decoding the best cut from the
 * trained circuit's measurement distribution.
 *
 * Build & run:  ./build/examples/qaoa_maxcut
 */

#include <algorithm>
#include <cstdio>

#include "core/runtime.h"
#include "device/catalog.h"
#include "hamiltonian/maxcut.h"
#include "vqa/problem.h"

int
main()
{
    using namespace eqc;

    MaxCutInstance graph = ringMaxCut4();
    std::printf("MaxCut on the 4-node ring; optimum cut = %d edges\n\n",
                bruteForceMaxCut(graph));

    VqaProblem problem = makeRingMaxCutQaoa();

    std::vector<Device> ensemble = {
        deviceByName("ibmq_belem"), deviceByName("ibmq_bogota"),
        deviceByName("ibmq_quito"), deviceByName("ibmq_manila"),
        deviceByName("ibmq_lima"),
    };

    EqcOptions opts;
    opts.master.epochs = 50;
    opts.master.weightBounds = {0.5, 1.5};
    // Shared QAOA parameters require exact per-occurrence shifts (the
    // whole-parameter rule has zero gradient on ring instances).
    opts.client.shiftMode = ShiftMode::PerOccurrence;
    opts.seed = 3;
    Runtime runtime;
    EqcTrace trace = runtime.submit(problem, ensemble, opts).take();

    std::printf("trained %zu iterations at %.0f iterations/hour\n",
                trace.epochs.size(), trace.epochsPerHour);
    std::printf("final cost <H> = %.4f (per edge %.4f; p=1 limit is "
                "about -0.75 per edge)\n\n",
                finalEnergy(trace, 10), finalEnergy(trace, 10) / 4.0);

    // Decode: sample the trained circuit and rank cut assignments.
    Statevector sv = simulateIdeal(problem.ansatz, trace.finalParams);
    auto probs = sv.probabilities();
    std::vector<std::pair<double, uint64_t>> ranked;
    for (uint64_t a = 0; a < probs.size(); ++a)
        ranked.push_back({probs[a], a});
    std::sort(ranked.rbegin(), ranked.rend());

    std::printf("most likely partitions from the trained circuit:\n");
    std::printf("%-12s %-10s %-4s\n", "assignment", "P", "cut");
    for (int i = 0; i < 6; ++i) {
        auto [p, a] = ranked[i];
        std::string bits;
        for (int q = 0; q < 4; ++q)
            bits += ((a >> q) & 1) ? '1' : '0';
        std::printf("%-12s %-10.4f %-4d\n", bits.c_str(), p,
                    cutValue(graph, a));
    }
    std::printf("\n(The optimal alternating partitions 0101/1010 should "
                "dominate the distribution.)\n");
    return 0;
}
